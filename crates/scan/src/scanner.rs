//! The scanner: drive a resolver over the whole input list from a
//! worker pool, folding results into the streaming analytics pipeline
//! as it goes — per-worker partial aggregates merged into a shared
//! snapshot store, a bounded query-log ring instead of an unbounded
//! outcome buffer — plus the revisit pass for flap/cache phenomena.

use crate::aggregate::PartialAggregate;
use crate::population::Population;
use crate::querylog::{QueryLog, QueryLogStats, QueryRecord};
use crate::stats::v1::StatsSnapshot;
use crate::stream::{LiveCtx, SnapshotStore, StreamReport};
use crate::world::ScanWorld;
use ede_resolver::{
    CacheStatsSnapshot, InfraStatsSnapshot, L1Cache, L1StatsSnapshot, Resolution, ResolutionPool,
    Resolver, RetryPolicy, Vendor, VendorProfile,
};
use ede_trace::{Metrics, MetricsSnapshot, SnapshotSink};
use ede_wire::{Name, RrType};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-tier cache accounting for one scan: the workers' private L1
/// tiers (summed), the shared L2 store, and the infrastructure cache.
/// Reported alongside the metrics in the end-of-run summary; never part
/// of the determinism comparisons (tier *placement* of a hit is a
/// performance fact, not a result).
#[derive(Debug, Clone, Default)]
pub struct ScanCacheReport {
    /// Summed counters of every worker's L1 tier.
    pub l1: L1StatsSnapshot,
    /// The shared (L2) resolution cache's counters.
    pub l2: CacheStatsSnapshot,
    /// The infrastructure cache's counters (zone keys + referrals).
    pub infra: InfraStatsSnapshot,
    /// The range tier's counters (RFC 8198 denial synthesis). All zero
    /// when [`ScanConfig::synthesize`] is off: the engine never probes
    /// the tier then.
    pub range: CacheStatsSnapshot,
}

impl ScanCacheReport {
    /// Multi-line human rendering with per-tier hit ratios, matching
    /// the metrics `render()` style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("cache tiers:\n");
        out.push_str(&format!(
            "  L1        : {} hits / {} probes ({:.1}%), {} flips\n",
            self.l1.hits,
            self.l1.hits + self.l1.misses,
            100.0 * self.l1.hit_ratio(),
            self.l1.capacity_flips,
        ));
        out.push_str(&format!(
            "  L2        : {} hits / {} probes ({:.1}%), {} stale, {} expired, {} evicted, {} live\n",
            self.l2.hits,
            self.l2.hits + self.l2.misses,
            100.0 * self.l2.hit_ratio(),
            self.l2.stale_served,
            self.l2.expired,
            self.l2.evicted,
            self.l2.occupancy,
        ));
        out.push_str(&format!(
            "  infra     : {} key replays, {} referral replays / {} probes ({:.1}%)\n",
            self.infra.key_hits,
            self.infra.referral_hits,
            self.infra.referral_hits + self.infra.referral_misses,
            100.0 * self.infra.referral_hit_ratio(),
        ));
        if self.range.hits + self.range.misses > 0 {
            out.push_str(&format!(
                "  ranges    : {} synthesized / {} probes ({:.1}%), {} evicted, {} live spans\n",
                self.range.hits,
                self.range.hits + self.range.misses,
                100.0 * self.range.hit_ratio(),
                self.range.evicted,
                self.range.occupancy,
            ));
        }
        out
    }
}

/// Accounting for the post-scan synthesis sweep: deterministic
/// nonexistent-name probes that measure how much of each TLD's denial
/// space the range tier already covers. Sweep probes never contribute
/// records — they exist purely to exercise RFC 8198 synthesis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Probe resolutions issued.
    pub probes: usize,
    /// Probes answered from the range tier (no authority asked).
    pub synthesized: u64,
    /// Upstream queries the sweep cost (misses walking to the TLDs).
    pub queries: u64,
}

impl SweepReport {
    /// Fraction of probes the range tier answered.
    pub fn hit_ratio(&self) -> f64 {
        self.synthesized as f64 / self.probes.max(1) as f64
    }
}

/// The complete scan output.
pub struct ScanResult {
    /// The final streaming-aggregation snapshot (`complete == true`):
    /// every report number, typed. This is what the renderers in
    /// [`crate::report`] consume.
    pub stats: StatsSnapshot,
    /// The query-log ring's retained records, in arrival (`seq`) order.
    /// Both passes appear (a revisited domain has a pass-1 and a pass-2
    /// record); with a ring smaller than the query count, the oldest
    /// records were spilled or dropped — `log.spilled` / `log.dropped`
    /// say which.
    pub records: Vec<QueryRecord>,
    /// Query-log occupancy and spill accounting.
    pub log: QueryLogStats,
    /// Streaming-pipeline counters (merge count/cost, exports).
    pub stream: StreamReport,
    /// Number of resolutions performed (both passes).
    pub resolutions: usize,
    /// Transport-level traffic counters: (queries, delivered, failed) —
    /// the simulated analogue of the paper's §5 traffic accounting.
    pub traffic: (u64, u64, u64),
    /// The full transport accounting, including the stream-channel,
    /// truncation, and fault counters the 3-tuple predates.
    pub traffic_full: ede_netsim::TrafficSnapshot,
    /// Metrics collected through the trace pipeline during the scan
    /// (query/outcome counters, cache ratios, per-vendor EDE counts,
    /// latency histograms). `metrics.queries_sent` equals `traffic.0`:
    /// both count the same transport events.
    pub metrics: MetricsSnapshot,
    /// Per-tier cache accounting (L1 summed over workers, L2, infra,
    /// ranges).
    pub cache: ScanCacheReport,
    /// Synthesis-sweep accounting, when [`ScanConfig::sweep_ratio`] was
    /// nonzero. The sweep runs after both passes with the range tier
    /// frozen, so it never perturbs the records above.
    pub sweep: Option<SweepReport>,
}

impl ScanResult {
    /// The final record per domain ("the last response wins", as in a
    /// longitudinal probe): pass-2 records shadow pass-1 records for
    /// revisited domains. Returned in domain-index order. With a ring
    /// smaller than the population, domains whose records rotated out
    /// are absent.
    pub fn final_records(&self) -> Vec<&QueryRecord> {
        let mut last: BTreeMap<usize, &QueryRecord> = BTreeMap::new();
        for r in &self.records {
            // `records` is in seq order, so a later insert is a later
            // response.
            last.insert(r.domain, r);
        }
        last.into_values().collect()
    }

    /// Upstream queries per *registered domain* — the paper's §5 cost
    /// metric, derived from the shared [`StatsSnapshot`] so the report
    /// and the bench writer can never drift.
    pub fn queries_per_domain(&self) -> f64 {
        self.stats.queries_per_domain()
    }
}

/// Scan config.
///
/// `#[non_exhaustive]`: construct with [`ScanConfig::default()`] or the
/// fluent [`ScanConfig::builder()`], then adjust fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ScanConfig {
    /// Worker threads.
    pub workers: usize,
    /// Resolutions each worker keeps in flight on its event-driven task
    /// pool. `1` (the default) runs the historical blocking path —
    /// byte-identical output, no task events; `> 1` multiplexes that
    /// many resumable resolutions per worker thread (results stay
    /// bit-identical, see `docs/CONCURRENCY.md`).
    pub inflight: usize,
    /// Vendor to scan with (the paper uses Cloudflare).
    pub vendor: Vendor,
    /// Print live progress lines to stderr while scanning.
    pub progress: bool,
    /// Override the world's retry policy for the scanning resolver.
    /// `None` keeps the world's configuration (the compat baseline),
    /// which is what the pinned repro-scan inventory is built on.
    pub retry: Option<RetryPolicy>,
    /// Give each worker a private L1 cache tier (on by default). Purely
    /// a performance knob: scan results are bit-identical with it on or
    /// off.
    pub l1: bool,
    /// Bound the scanning resolver's shared cache to this many entries
    /// (`None` keeps the world's configuration, normally unbounded).
    /// Unlike `l1` this is *not* results-neutral: evicting a live entry
    /// turns a later replay into a live walk — see `docs/PERFORMANCE.md`.
    pub max_cache_entries: Option<usize>,
    /// Enable RFC 8198 denial synthesis in the scanning resolver (the
    /// vendor gate must also agree — OpenDNS keeps it off). Off by
    /// default: the pinned scan inventory is the synthesis-free walk.
    /// Observation reports are EDE-equivalent either way (pinned by
    /// test); only the traffic spent on nonexistent names changes.
    pub synthesize: bool,
    /// Nonexistent-name probes per registered domain for the post-scan
    /// synthesis sweep (`0.0`, the default, disables the sweep). The
    /// sweep runs after both passes with the range tier frozen and its
    /// probes excluded from the records, so any setting leaves the
    /// scan report untouched.
    pub sweep_ratio: f64,
    /// Bound the resolver's range tier to this many spans (`None` keeps
    /// the resolver default, normally unbounded).
    pub max_range_entries: Option<usize>,
    /// Bound the resolver's range tier to this many bytes.
    pub max_range_bytes: Option<usize>,
    /// Virtual-clock seconds between mid-scan snapshot exports (only
    /// meaningful when sinks are registered via [`scan_streaming`]).
    /// `0` disables mid-scan exports; the final snapshot always
    /// exports. Purely an observability knob: the cadence cannot change
    /// results (see `docs/CONCURRENCY.md`).
    pub snapshot_cadence_secs: u64,
    /// Query-log ring capacity (records retained in memory). Purely a
    /// memory knob: the streaming aggregation never reads the ring, so
    /// any capacity produces the same report.
    pub query_log_capacity: usize,
    /// Spill rotated-out query-log records to this JSONL file instead
    /// of dropping them (`None` drops, counted).
    pub query_log_spill: Option<PathBuf>,
}

impl Default for ScanConfig {
    fn default() -> Self {
        // `EDE_SCAN_WORKERS` overrides the auto-detected pool size — the
        // throughput bench sweeps it, and operators can pin it. Results
        // are bit-identical at any worker count, so this is purely a
        // performance knob.
        let workers = std::env::var("EDE_SCAN_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&w| w > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .min(16)
            });
        // `EDE_SCAN_INFLIGHT` sets the per-worker in-flight window the
        // same way; like the worker count it is purely a performance
        // knob — results are bit-identical at any setting.
        let inflight = std::env::var("EDE_SCAN_INFLIGHT")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&w| w > 0)
            .unwrap_or(1);
        ScanConfig {
            workers,
            inflight,
            vendor: Vendor::Cloudflare,
            progress: false,
            retry: None,
            l1: true,
            max_cache_entries: None,
            synthesize: false,
            sweep_ratio: 0.0,
            max_range_entries: None,
            max_range_bytes: None,
            snapshot_cadence_secs: 60,
            query_log_capacity: 65_536,
            query_log_spill: None,
        }
    }
}

impl ScanConfig {
    /// Start a fluent builder from the defaults.
    pub fn builder() -> ScanConfigBuilder {
        ScanConfigBuilder {
            config: ScanConfig::default(),
        }
    }
}

/// Fluent builder for [`ScanConfig`]; finish with
/// [`build`](ScanConfigBuilder::build).
///
/// ```
/// use ede_scan::ScanConfig;
/// use ede_resolver::{RetryPolicy, Vendor};
///
/// let config = ScanConfig::builder()
///     .workers(1)
///     .vendor(Vendor::Cloudflare)
///     .retry(RetryPolicy::default())
///     .snapshot_cadence_secs(30)
///     .query_log_capacity(4096)
///     .build();
/// assert_eq!(config.workers, 1);
/// assert_eq!(config.query_log_capacity, 4096);
/// ```
#[derive(Debug, Clone)]
pub struct ScanConfigBuilder {
    config: ScanConfig,
}

impl ScanConfigBuilder {
    /// Set the worker-pool size.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Set the per-worker in-flight resolution window (`1` = the
    /// blocking path, `> 1` = event-driven task pools).
    pub fn inflight(mut self, n: usize) -> Self {
        self.config.inflight = n.max(1);
        self
    }

    /// Set the scanning vendor profile.
    pub fn vendor(mut self, vendor: Vendor) -> Self {
        self.config.vendor = vendor;
        self
    }

    /// Enable or disable live progress lines.
    pub fn progress(mut self, on: bool) -> Self {
        self.config.progress = on;
        self
    }

    /// Override the retry policy of the scanning resolver.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = Some(policy);
        self
    }

    /// Enable or disable the per-worker L1 cache tier.
    pub fn l1(mut self, on: bool) -> Self {
        self.config.l1 = on;
        self
    }

    /// Bound the scanning resolver's shared cache (entries).
    pub fn max_cache_entries(mut self, n: Option<usize>) -> Self {
        self.config.max_cache_entries = n;
        self
    }

    /// Enable RFC 8198 denial synthesis in the scanning resolver.
    pub fn synthesize(mut self, on: bool) -> Self {
        self.config.synthesize = on;
        self
    }

    /// Set the synthesis-sweep probe ratio (`0.0` disables the sweep).
    pub fn sweep_ratio(mut self, ratio: f64) -> Self {
        self.config.sweep_ratio = ratio.max(0.0);
        self
    }

    /// Bound the resolver's range tier (spans).
    pub fn max_range_entries(mut self, n: Option<usize>) -> Self {
        self.config.max_range_entries = n;
        self
    }

    /// Bound the resolver's range tier (bytes).
    pub fn max_range_bytes(mut self, n: Option<usize>) -> Self {
        self.config.max_range_bytes = n;
        self
    }

    /// Set the mid-scan snapshot export cadence (virtual seconds; `0`
    /// exports only the final snapshot).
    pub fn snapshot_cadence_secs(mut self, secs: u64) -> Self {
        self.config.snapshot_cadence_secs = secs;
        self
    }

    /// Set the query-log ring capacity.
    pub fn query_log_capacity(mut self, n: usize) -> Self {
        self.config.query_log_capacity = n.max(1);
        self
    }

    /// Spill rotated-out query-log records to a JSONL file.
    pub fn query_log_spill(mut self, path: Option<PathBuf>) -> Self {
        self.config.query_log_spill = path;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> ScanConfig {
        self.config
    }
}

/// Fold one finished resolution into a query record.
fn record_from(
    pop: &Population,
    idx: usize,
    res: &Resolution,
    vendor: Vendor,
    pass: u8,
    vtime_ms: u64,
) -> QueryRecord {
    let d = &pop.domains[idx];
    let network_error_text = res
        .ede
        .iter()
        .find(|e| e.code.to_u16() == 23)
        .map(|e| e.extra_text.clone());
    QueryRecord {
        seq: 0, // assigned by the query log at push
        vtime_ms,
        pass,
        domain: idx,
        name: d.name.to_string(),
        tld: d.tld,
        rank: d.rank,
        category: d.category,
        vendor,
        rcode: res.rcode,
        codes: res.ede_codes(),
        network_error_text,
    }
}

/// Detaches the world's trace sink on drop — including during unwind,
/// so a panicking worker cannot leak this scan's metrics sink into the
/// next scan (or troubleshoot run) on the same world.
struct SinkGuard<'a> {
    net: &'a ede_netsim::Network,
}

impl Drop for SinkGuard<'_> {
    fn drop(&mut self) {
        self.net.clear_trace_sink();
    }
}

/// How many domains a worker claims per cursor bump. Chunking amortizes
/// the shared-cursor traffic without hurting load balance: chunks are
/// tiny relative to any real population. The same chunk is the unit of
/// streaming delivery: one query-log push and one partial-aggregate
/// merge per chunk, so neither lock is per-resolution hot.
const CLAIM_CHUNK: usize = 16;

/// Shared progress state for [`parallel_pass`].
struct PassProgress<'a> {
    metrics: &'a Metrics,
    done: &'a AtomicUsize,
    step: usize,
    total: usize,
    enabled: bool,
}

impl PassProgress<'_> {
    /// Count one finished resolution and maybe print a progress line.
    fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.enabled && done.is_multiple_of(self.step) {
            let snap = self.metrics.snapshot();
            eprintln!(
                "scan: {done}/{} resolutions, {} queries, cache hit ratio {:.1}%",
                self.total,
                snap.queries_sent,
                100.0 * snap.cache_hit_ratio()
            );
        }
    }
}

/// Everything a pass worker needs besides the resolver: the streaming
/// destinations and the fold gate.
struct PassCtx<'a> {
    /// Which pass this is (stamped into records).
    pass: u8,
    /// Pass 1 skips folding revisit-category domains — their final
    /// record comes from pass 2, and each domain must fold exactly
    /// once. Pass 2 folds everything it resolves.
    fold_revisit: bool,
    store: &'a SnapshotStore,
    live: &'a LiveCtx<'a>,
    progress: &'a PassProgress<'a>,
}

impl PassCtx<'_> {
    /// Should this record fold into the streaming aggregate?
    fn folds(&self, idx: usize) -> bool {
        self.fold_revisit || !self.live.pop.domains[idx].category.needs_revisit()
    }

    /// Deliver one finished chunk: a single ring push and a single
    /// store merge.
    fn flush(&self, records: Vec<QueryRecord>, chunk_agg: PartialAggregate) {
        self.live.log.push_batch(records);
        self.store.merge(chunk_agg, self.live);
    }

    /// Build the record for one finished resolution and fold it if the
    /// gate says so.
    fn record(
        &self,
        idx: usize,
        res: &Resolution,
        chunk_agg: &mut PartialAggregate,
    ) -> QueryRecord {
        let rec = record_from(
            self.live.pop,
            idx,
            res,
            self.live.vendor,
            self.pass,
            self.live.net.clock().now_millis(),
        );
        if self.folds(idx) {
            chunk_agg.fold(&rec);
        }
        self.progress.tick();
        rec
    }
}

/// The blocking worker body (`inflight == 1`): resolve each claimed
/// domain to completion before touching the next. This is the historical
/// scan path, kept verbatim as the byte-identity baseline.
fn blocking_worker(
    resolver: &Resolver,
    ctx: &PassCtx<'_>,
    indices: &[usize],
    cursor: &AtomicUsize,
    use_l1: bool,
) -> L1StatsSnapshot {
    // The worker's private tier: lives on this thread, dies with this
    // pass, never shared — which is what lets it skip synchronization
    // entirely.
    let l1 = use_l1.then(L1Cache::new);
    let pop = ctx.live.pop;
    loop {
        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
        if start >= indices.len() {
            break;
        }
        let end = (start + CLAIM_CHUNK).min(indices.len());
        let mut records = Vec::with_capacity(end - start);
        let mut chunk_agg = PartialAggregate::default();
        for &i in &indices[start..end] {
            let res = match &l1 {
                Some(l1) => resolver.resolve_l1(&pop.domains[i].name, RrType::A, l1),
                None => resolver.resolve(&pop.domains[i].name, RrType::A),
            };
            records.push(ctx.record(i, &res, &mut chunk_agg));
        }
        ctx.flush(records, chunk_agg);
    }
    l1.map(|l1| l1.stats()).unwrap_or_default()
}

/// The event-driven worker body (`inflight > 1`): keep up to `inflight`
/// resumable resolutions in flight on one [`ResolutionPool`], refilling
/// from the shared cursor (same `CLAIM_CHUNK` claiming as the blocking
/// path) as tasks complete. Results surface in completion order and
/// stream out in completion-order chunks; the streaming fold is
/// order-independent, so this changes nothing downstream.
fn pooled_worker(
    resolver: &Arc<Resolver>,
    ctx: &PassCtx<'_>,
    indices: &[usize],
    cursor: &AtomicUsize,
    inflight: usize,
    use_l1: bool,
) -> L1StatsSnapshot {
    // Every task spawned on this pool runs on this thread, so they all
    // share one `Rc<L1Cache>` — legal precisely because `spawn` has no
    // `Send` bound (see `docs/CONCURRENCY.md`).
    let l1 = use_l1.then(|| Rc::new(L1Cache::new()));
    let pop = ctx.live.pop;
    let mut pool: ResolutionPool<(usize, Resolution)> =
        ResolutionPool::new(resolver.network_shared());
    let mut backlog: VecDeque<usize> = VecDeque::new();
    let mut exhausted = false;
    let mut records = Vec::with_capacity(CLAIM_CHUNK);
    let mut chunk_agg = PartialAggregate::default();
    loop {
        while pool.in_flight() < inflight && !(exhausted && backlog.is_empty()) {
            if backlog.is_empty() {
                let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                if start >= indices.len() {
                    exhausted = true;
                    continue;
                }
                let end = (start + CLAIM_CHUNK).min(indices.len());
                backlog.extend(indices[start..end].iter().copied());
            }
            if let Some(i) = backlog.pop_front() {
                let qname = pop.domains[i].name.clone();
                let resolver = Arc::clone(resolver);
                let l1 = l1.clone();
                pool.spawn(move |handle| async move {
                    let res = match l1 {
                        Some(l1) => resolver.resolve_on_l1(handle, qname, RrType::A, l1).await,
                        None => resolver.resolve_on(handle, qname, RrType::A).await,
                    };
                    (i, res)
                });
            }
        }
        match pool.next() {
            Some((i, res)) => {
                records.push(ctx.record(i, &res, &mut chunk_agg));
                if records.len() >= CLAIM_CHUNK {
                    ctx.flush(
                        std::mem::replace(&mut records, Vec::with_capacity(CLAIM_CHUNK)),
                        std::mem::take(&mut chunk_agg),
                    );
                }
            }
            None => {
                debug_assert!(exhausted && backlog.is_empty());
                break;
            }
        }
    }
    ctx.flush(records, chunk_agg);
    l1.map(|l1| l1.stats()).unwrap_or_default()
}

/// One parallel pass over `indices`: workers claim chunks off a shared
/// cursor, fold each chunk into a **private** partial aggregate, and
/// stream it — one query-log push and one snapshot-store merge per
/// chunk. There is no end-of-pass output structure at all: by the time
/// the scope joins, every record is already in the ring and every fold
/// already merged.
///
/// Each worker multiplexes `inflight` resolutions on an event-driven
/// task pool (`inflight == 1` short-circuits to the blocking path).
fn parallel_pass(
    resolver: &Arc<Resolver>,
    ctx: &PassCtx<'_>,
    indices: &[usize],
    workers: usize,
    inflight: usize,
    use_l1: bool,
) -> L1StatsSnapshot {
    let cursor = AtomicUsize::new(0);
    let stats: Vec<L1StatsSnapshot> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.max(1))
            .map(|_| {
                s.spawn(|| {
                    if inflight > 1 {
                        pooled_worker(resolver, ctx, indices, &cursor, inflight, use_l1)
                    } else {
                        blocking_worker(resolver, ctx, indices, &cursor, use_l1)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    let mut l1 = L1StatsSnapshot::default();
    for s in stats {
        l1.merge(&s);
    }
    l1
}

/// Deterministic nonexistent probe names for the synthesis sweep: per
/// TLD, `ceil(children × ratio)` names one label below the TLD apex.
/// The `-sweep` suffix keeps them disjoint from every generated
/// population name, so a probe can never collide with a registered
/// domain.
fn sweep_probes(pop: &Population, ratio: f64) -> Vec<Name> {
    let mut per_tld = vec![0usize; pop.tlds.len()];
    for d in &pop.domains {
        per_tld[d.tld] += 1;
    }
    let mut probes = Vec::new();
    for (t, tld) in pop.tlds.iter().enumerate() {
        let n = (per_tld[t] as f64 * ratio).ceil() as usize;
        for j in 0..n {
            let label = format!("zzq{j}-sweep");
            probes.push(tld.name.child(&label).expect("probe label fits"));
        }
    }
    probes
}

/// Drive the sweep probes through the worker pool, discarding results:
/// sweep probes measure the range tier, they never contribute
/// records. Runs with the range tier frozen (the caller freezes
/// it), so every probe's outcome is a pure function of what the two
/// passes retained — bit-identical at any worker count or in-flight
/// window, exactly like the passes themselves.
fn sweep_pass(resolver: &Arc<Resolver>, probes: &[Name], workers: usize, inflight: usize) {
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            s.spawn(|| {
                if inflight > 1 {
                    let mut pool: ResolutionPool<()> =
                        ResolutionPool::new(resolver.network_shared());
                    let mut backlog: VecDeque<usize> = VecDeque::new();
                    let mut exhausted = false;
                    loop {
                        while pool.in_flight() < inflight && !(exhausted && backlog.is_empty()) {
                            if backlog.is_empty() {
                                let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                                if start >= probes.len() {
                                    exhausted = true;
                                    continue;
                                }
                                let end = (start + CLAIM_CHUNK).min(probes.len());
                                backlog.extend(start..end);
                            }
                            if let Some(i) = backlog.pop_front() {
                                let qname = probes[i].clone();
                                let resolver = Arc::clone(resolver);
                                pool.spawn(move |handle| async move {
                                    let _ = resolver.resolve_on(handle, qname, RrType::A).await;
                                });
                            }
                        }
                        if pool.next().is_none() {
                            break;
                        }
                    }
                } else {
                    loop {
                        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= probes.len() {
                            break;
                        }
                        let end = (start + CLAIM_CHUNK).min(probes.len());
                        for name in &probes[start..end] {
                            let _ = resolver.resolve(name, RrType::A);
                        }
                    }
                }
            });
        }
    });
}

/// Run the scan with no snapshot sinks attached. Equivalent to
/// [`scan_streaming`] with an empty sink list; the streaming pipeline
/// still runs (it is *the* aggregation path), it just exports nothing
/// mid-flight.
pub fn scan(pop: &Population, world: &ScanWorld, config: &ScanConfig) -> ScanResult {
    scan_streaming(pop, world, config, &[])
}

/// Run the scan: one pass over every domain, then a clock advance and a
/// revisit pass over the flap/cache categories (the paper's probes hit
/// such domains repeatedly through Cloudflare's shared cache). Both
/// passes run on the worker pool and stream their results — per-chunk
/// partial aggregates merged into a shared snapshot store, records into
/// the bounded query-log ring — so there is no end-of-scan aggregation
/// barrier and no unbounded outcome buffer. Results are bit-identical
/// at any worker count, in-flight window, or snapshot cadence.
///
/// `sinks` receive a [`StatsSnapshot`] JSON document at every cadence
/// boundary of the virtual clock (see
/// [`ScanConfig::snapshot_cadence_secs`]) and one final complete
/// snapshot.
pub fn scan_streaming(
    pop: &Population,
    world: &ScanWorld,
    config: &ScanConfig,
    sinks: &[Arc<dyn SnapshotSink>],
) -> ScanResult {
    // Every transport/resolver/EDE event of the scan feeds the metrics
    // registry through the trace pipeline. The guard detaches the sink
    // when `scan` returns *or unwinds*.
    let metrics = Arc::new(Metrics::new());
    world
        .net
        .set_trace_sink(Arc::clone(&metrics) as Arc<dyn ede_trace::TraceSink>);
    let _sink_guard = SinkGuard { net: &world.net };

    let mut resolver_config = world.resolver_config.clone();
    if let Some(policy) = &config.retry {
        resolver_config.retry = policy.clone();
    }
    if config.max_cache_entries.is_some() {
        resolver_config.max_cache_entries = config.max_cache_entries;
    }
    if config.synthesize {
        resolver_config.synthesize_denial = true;
    }
    if config.max_range_entries.is_some() {
        resolver_config.max_range_entries = config.max_range_entries;
    }
    if config.max_range_bytes.is_some() {
        resolver_config.max_range_bytes = config.max_range_bytes;
    }
    let enable_cache = resolver_config.enable_cache;
    let resolver = Arc::new(Resolver::new(
        Arc::clone(&world.net),
        VendorProfile::new(config.vendor),
        resolver_config,
    ));

    let log = QueryLog::new(config.query_log_capacity, config.query_log_spill.as_deref())
        .expect("query-log spill file must be creatable");
    let store = SnapshotStore::new(
        sinks.to_vec(),
        config.snapshot_cadence_secs,
        world.net.clock().now_millis(),
    );

    // Prime the infrastructure cache: one serial (TLD, NS) resolution
    // per TLD walks every root→TLD delegation once, *before* the
    // workers start. Without this, which resolution populates a given
    // referral entry first — and therefore how many root queries the
    // scan issues — would depend on thread timing; with it, every
    // worker-count and in-flight configuration sees the same
    // pre-populated walk and the traffic and metrics counters stay
    // bit-identical across all of them.
    if enable_cache {
        for tld in &pop.tlds {
            let _ = resolver.resolve(&tld.name, RrType::Ns);
        }
    }

    let n = pop.domains.len();
    let first_pass: Vec<usize> = (0..n).collect();
    let revisit: Vec<usize> = (0..n)
        .filter(|&i| pop.domains[i].category.needs_revisit())
        .collect();
    let resolutions = AtomicUsize::new(0);
    let progress = PassProgress {
        metrics: &metrics,
        done: &resolutions,
        step: (n / 10).max(1),
        total: n + revisit.len(),
        enabled: config.progress,
    };
    let live = LiveCtx {
        pop,
        net: &world.net,
        resolver: &resolver,
        log: &log,
        resolutions: &resolutions,
        vendor: config.vendor,
        scale: pop.config.scale,
        tranco_size: pop.config.tranco_size,
    };

    // Pass 1: everything, in parallel. Revisit-category domains are
    // recorded but not folded — their final answer comes from pass 2.
    let mut l1_stats = L1StatsSnapshot::default();
    let ctx1 = PassCtx {
        pass: 1,
        fold_revisit: false,
        store: &store,
        live: &live,
        progress: &progress,
    };
    l1_stats.merge(&parallel_pass(
        &resolver,
        &ctx1,
        &first_pass,
        config.workers,
        config.inflight,
        config.l1,
    ));

    // Pass 2: revisit flap/cache domains after the flap window ("the
    // last response wins", as in a longitudinal probe).
    world.net.clock().advance_secs(120);
    let ctx2 = PassCtx {
        pass: 2,
        fold_revisit: true,
        store: &store,
        live: &live,
        progress: &progress,
    };
    l1_stats.merge(&parallel_pass(
        &resolver,
        &ctx2,
        &revisit,
        config.workers,
        config.inflight,
        config.l1,
    ));

    // Sweep phase: after both passes finish (and therefore after every
    // record is final), freeze the range tier and probe deterministic
    // nonexistent names against it. Freezing makes every probe's
    // outcome a pure function of what the passes retained —
    // deterministic at any worker count — and running strictly last
    // means the sweep cannot perturb records, whatever it does to the
    // caches.
    let sweep = (config.sweep_ratio > 0.0).then(|| {
        resolver.freeze_ranges(true);
        let range_before = resolver.range_stats();
        let (queries_before, _, _) = world.net.stats().snapshot();
        let probes = sweep_probes(pop, config.sweep_ratio);
        sweep_pass(&resolver, &probes, config.workers, config.inflight);
        let range_after = resolver.range_stats();
        let (queries_after, _, _) = world.net.stats().snapshot();
        SweepReport {
            probes: probes.len(),
            synthesized: range_after.hits - range_before.hits,
            queries: queries_after - queries_before,
        }
    });

    let cache = ScanCacheReport {
        l1: l1_stats,
        l2: resolver.cache_stats(),
        infra: resolver.infra_stats(),
        range: resolver.range_stats(),
    };
    if config.progress {
        eprint!("{}", cache.render());
        if let Some(sweep) = &sweep {
            eprintln!(
                "sweep: {} synthesized / {} probes ({:.1}%), {} upstream queries",
                sweep.synthesized,
                sweep.probes,
                100.0 * sweep.hit_ratio(),
                sweep.queries,
            );
        }
    }

    // The final snapshot: the merged streaming aggregate plus the
    // counters only the end of the scan can know (summed L1 tiers, the
    // sweep report). Exported to every sink regardless of cadence.
    let agg = store.finalize(pop);
    let stats = StatsSnapshot::from_parts(
        store.claim_seq(),
        world.net.clock().now_millis(),
        true,
        pop.config.scale,
        pop.config.tranco_size,
        &agg,
        &cache,
        resolutions.load(Ordering::Relaxed),
        world.net.stats().snapshot(),
        sweep.as_ref(),
        log.stats(),
    );
    let stream = store.finish(&stats);

    let log_stats = log.stats();
    let records = log.into_records();
    ScanResult {
        stats,
        records,
        log: log_stats,
        stream,
        resolutions: resolutions.into_inner(),
        traffic: world.net.stats().snapshot(),
        traffic_full: world.net.stats().snapshot_full(),
        metrics: metrics.snapshot(),
        cache,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Category, PopulationConfig};
    use ede_wire::Rcode;

    #[test]
    fn tiny_scan_end_to_end() {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let result = scan(&pop, &world, &ScanConfig::builder().workers(4).build());
        let finals = result.final_records();
        assert_eq!(finals.len(), pop.domains.len());
        assert_eq!(result.stats.ede.total_domains, pop.domains.len());
        assert!(result.resolutions >= pop.domains.len());
        assert!(result.stats.complete);

        // Healthy domains resolve cleanly; lame ones carry codes.
        for obs in finals {
            match obs.category {
                Category::HealthyUnsigned | Category::HealthySigned => {
                    assert_eq!(obs.rcode, Rcode::NoError, "{}", obs.name);
                    assert!(obs.codes.is_empty(), "{}: {:?}", obs.name, obs.codes);
                }
                Category::LameRcode => {
                    assert_eq!(obs.codes, vec![22, 23], "{}", obs.name);
                }
                Category::StaleFlapRefuse => {
                    assert!(obs.codes.contains(&3), "{}: {:?}", obs.name, obs.codes);
                }
                Category::NotAuthCached => {
                    assert!(obs.codes.contains(&13), "{}: {:?}", obs.name, obs.codes);
                }
                _ => {}
            }
        }
    }

    /// The contention work (sharded caches, per-worker buffers,
    /// singleflight key fetches, streaming merges) must not buy speed
    /// with nondeterminism: 1 worker and 16 workers must produce
    /// identical records, streaming aggregates, metrics counters, and
    /// traffic totals.
    #[test]
    fn worker_count_does_not_change_results() {
        let run = |workers: usize| {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(
                &pop,
                &world,
                &ScanConfig::builder()
                    .workers(workers)
                    .vendor(Vendor::Cloudflare)
                    .build(),
            );
            let agg = crate::aggregate::aggregate(&pop, &result);
            (result, agg)
        };
        let (serial, agg_serial) = run(1);
        let (parallel, agg_parallel) = run(16);
        assert_eq!(serial.final_records(), parallel.final_records());
        assert_eq!(serial.resolutions, parallel.resolutions);
        assert_eq!(serial.traffic, parallel.traffic);
        assert_eq!(serial.metrics, parallel.metrics);
        assert!(serial.stats.same_results(&parallel.stats));
        assert_eq!(serial.stats.fingerprint, parallel.stats.fingerprint);
        assert_eq!(agg_serial.per_code, agg_parallel.per_code);
        assert_eq!(agg_serial.per_combo, agg_parallel.per_combo);
        assert_eq!(agg_serial.ede_domains, agg_parallel.ede_domains);
        assert_eq!(agg_serial.noerror_with_ede, agg_parallel.noerror_with_ede);
    }

    /// The event-driven task pools must not buy concurrency with
    /// changed results either: any in-flight window produces the same
    /// records, aggregates, traffic totals, and metrics counters
    /// as the blocking single-resolution path. Only the scheduler
    /// statistics (task counts, peak gauges) may differ — they measure
    /// the scheduling itself, so the comparison strips them.
    #[test]
    fn inflight_window_does_not_change_results() {
        let run = |workers: usize, inflight: usize| {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(
                &pop,
                &world,
                &ScanConfig::builder()
                    .workers(workers)
                    .inflight(inflight)
                    .build(),
            );
            let agg = crate::aggregate::aggregate(&pop, &result);
            (result, agg)
        };
        let (blocking, agg_blocking) = run(1, 1);
        for (workers, inflight) in [(1, 2), (1, 64), (4, 16)] {
            let (pooled, agg_pooled) = run(workers, inflight);
            assert_eq!(
                blocking.final_records(),
                pooled.final_records(),
                "inflight {inflight}"
            );
            assert_eq!(blocking.resolutions, pooled.resolutions);
            assert_eq!(blocking.traffic, pooled.traffic);
            assert_eq!(blocking.traffic_full, pooled.traffic_full);
            assert!(
                blocking.stats.same_results(&pooled.stats),
                "inflight {inflight}"
            );
            assert_eq!(
                blocking.metrics.without_scheduler_stats(),
                pooled.metrics.without_scheduler_stats(),
                "inflight {inflight}"
            );
            // The pooled run really ran pooled: every domain became a
            // task and every task completed.
            assert_eq!(pooled.metrics.tasks_spawned, blocking.resolutions as u64);
            assert_eq!(pooled.metrics.tasks_completed, pooled.metrics.tasks_spawned);
            assert!(
                pooled.metrics.inflight_tasks_peak > 1,
                "inflight {inflight}"
            );
            assert_eq!(agg_blocking.per_code, agg_pooled.per_code);
            assert_eq!(agg_blocking.per_combo, agg_pooled.per_combo);
        }
    }

    /// The RFC 8198 pin: turning denial synthesis on (with a sweep)
    /// must leave every record — and therefore the whole per-EDE /
    /// per-TLD report — byte-identical to the synthesis-free scan.
    /// Registered names are chain owners of their TLD's NSEC3 registry,
    /// so no validated range ever covers one; only the sweep's
    /// nonexistent probes synthesize, and those are excluded from the
    /// records. The sweep itself must really fire (nonzero
    /// synthesis, cheaper traffic) and stay deterministic across
    /// worker/in-flight configurations.
    #[test]
    fn synthesis_is_report_neutral_and_sweep_synthesizes() {
        let run = |synthesize: bool, workers: usize, inflight: usize| {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(
                &pop,
                &world,
                &ScanConfig::builder()
                    .workers(workers)
                    .inflight(inflight)
                    .synthesize(synthesize)
                    .sweep_ratio(1.5)
                    .build(),
            );
            let summary = crate::report::scan_summary(&result.stats);
            (result, summary)
        };
        let (off, summary_off) = run(false, 1, 1);
        let (on, summary_on) = run(true, 1, 1);

        // Identical results: synthesis changes traffic, never what the
        // scan observes. (The full JSON documents differ only in the
        // traffic/cache performance sections, so compare results.)
        assert_eq!(off.final_records(), on.final_records());
        assert!(off.stats.same_results(&on.stats), "scan results changed");
        assert_eq!(summary_off, summary_on, "human summary changed");

        // The sweep ran in both legs, probing the same names; only the
        // synthesis leg answered some from the range tier.
        let sweep_off = off.sweep.clone().expect("sweep ran");
        let sweep_on = on.sweep.clone().expect("sweep ran");
        assert_eq!(sweep_off.probes, sweep_on.probes);
        assert_eq!(sweep_off.synthesized, 0);
        assert_eq!(sweep_off.queries, sweep_off.probes as u64);
        assert!(
            sweep_on.synthesized > 0,
            "no probe was answered from cached ranges"
        );
        assert!(
            sweep_on.queries < sweep_off.queries,
            "synthesis did not save upstream traffic"
        );
        assert!(on.queries_per_domain() < off.queries_per_domain());
        assert!(on.cache.range.hits > 0);
        assert_eq!(off.cache.range.hits + off.cache.range.misses, 0);
        // The sweep rides into the snapshot's traffic section.
        assert_eq!(
            on.stats.traffic.sweep.as_ref().map(|s| s.synthesized),
            Some(sweep_on.synthesized)
        );

        // Deterministic at any worker count / in-flight window, sweep
        // included: same records, same traffic, same sweep report.
        let (on_parallel, _) = run(true, 4, 16);
        assert_eq!(on.final_records(), on_parallel.final_records());
        assert_eq!(on.traffic, on_parallel.traffic);
        assert_eq!(on.sweep, on_parallel.sweep);
        assert!(on.stats.same_results(&on_parallel.stats));
    }

    /// A panic inside the scan must not leak the metrics sink into the
    /// next scan (or troubleshoot run) on the same world: the RAII
    /// guard detaches it during unwind.
    #[test]
    fn sink_guard_clears_tracer_on_unwind() {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let metrics = Arc::new(Metrics::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world
                .net
                .set_trace_sink(Arc::clone(&metrics) as Arc<dyn ede_trace::TraceSink>);
            let _guard = SinkGuard { net: &world.net };
            assert!(world.net.tracer().enabled());
            panic!("worker exploded");
        }));
        assert!(result.is_err());
        assert!(
            !world.net.tracer().enabled(),
            "trace sink leaked past the panic"
        );
    }

    #[test]
    fn scan_is_deterministic_across_runs() {
        let run = || {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(&pop, &world, &ScanConfig::builder().workers(2).build());
            (
                result.stats.fingerprint,
                result
                    .final_records()
                    .iter()
                    .map(|o| (o.name.clone(), o.codes.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
