//! Special-purpose IP address classification.
//!
//! Mirrors the IANA IPv4 and IPv6 Special-Purpose Address Registries
//! (RFC 6890 and successors) for every range the testbed's invalid-glue
//! groups 6 and 7 exercise. A glue record pointing into any of these
//! ranges can never reach a real authoritative server — the resolver's
//! connection attempt is doomed, which is what produces *No Reachable
//! Authority (22)* in the paper.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Why an address is special-purpose (not globally routable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialUse {
    /// 0.0.0.0 — "this host on this network".
    ThisHost,
    /// 10/8, 172.16/12, 192.168/16.
    Private,
    /// 127/8 or ::1.
    Loopback,
    /// 169.254/16 or fe80::/10.
    LinkLocal,
    /// 192.0.2/24, 198.51.100/24, 203.0.113/24, 2001:db8::/32.
    Documentation,
    /// 240/4 reserved for future use.
    Reserved,
    /// 224/4 or ff00::/8 multicast.
    Multicast,
    /// :: unspecified.
    Unspecified,
    /// fc00::/7 unique local.
    UniqueLocal,
    /// ::ffff:0:0/96 IPv4-mapped.
    Mapped,
    /// ::/96 deprecated IPv4-compatible ("IPv4 in hex form" /
    /// `v6-mapped-dep` in the testbed).
    MappedDeprecated,
    /// 64:ff9b::/96 NAT64 well-known prefix.
    Nat64,
}

impl SpecialUse {
    /// Registry-style label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SpecialUse::ThisHost => "this-host",
            SpecialUse::Private => "private-use",
            SpecialUse::Loopback => "loopback",
            SpecialUse::LinkLocal => "link-local",
            SpecialUse::Documentation => "documentation",
            SpecialUse::Reserved => "reserved",
            SpecialUse::Multicast => "multicast",
            SpecialUse::Unspecified => "unspecified",
            SpecialUse::UniqueLocal => "unique-local",
            SpecialUse::Mapped => "ipv4-mapped",
            SpecialUse::MappedDeprecated => "ipv4-compatible (deprecated)",
            SpecialUse::Nat64 => "nat64",
        }
    }
}

/// Routability of an address from a public resolver's vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrClass {
    /// Globally routable — packets can, in principle, be delivered.
    Routable,
    /// Special-purpose — unreachable from the public internet.
    Special(SpecialUse),
}

impl AddrClass {
    /// True for globally routable addresses.
    pub fn is_routable(self) -> bool {
        matches!(self, AddrClass::Routable)
    }
}

fn classify_v4(a: Ipv4Addr) -> AddrClass {
    let o = a.octets();
    let special = if o[0] == 0 {
        SpecialUse::ThisHost // 0.0.0.0 and the rest of 0/8 "this network"
    } else if o[0] == 10
        || (o[0] == 172 && (16..32).contains(&o[1]))
        || (o[0] == 192 && o[1] == 168)
    {
        SpecialUse::Private
    } else if o[0] == 127 {
        SpecialUse::Loopback
    } else if o[0] == 169 && o[1] == 254 {
        SpecialUse::LinkLocal
    } else if (o[0] == 192 && o[1] == 0 && o[2] == 2)
        || (o[0] == 198 && o[1] == 51 && o[2] == 100)
        || (o[0] == 203 && o[1] == 0 && o[2] == 113)
    {
        SpecialUse::Documentation
    } else if o[0] >= 240 {
        SpecialUse::Reserved
    } else if (224..240).contains(&o[0]) {
        SpecialUse::Multicast
    } else {
        return AddrClass::Routable;
    };
    AddrClass::Special(special)
}

fn classify_v6(a: Ipv6Addr) -> AddrClass {
    let s = a.segments();
    let special = if a == Ipv6Addr::UNSPECIFIED {
        SpecialUse::Unspecified
    } else if a == Ipv6Addr::LOCALHOST {
        SpecialUse::Loopback
    } else if s[0] == 0x2001 && s[1] == 0x0db8 {
        SpecialUse::Documentation
    } else if s[0] & 0xffc0 == 0xfe80 {
        SpecialUse::LinkLocal
    } else if s[0] & 0xfe00 == 0xfc00 {
        SpecialUse::UniqueLocal
    } else if s[0] & 0xff00 == 0xff00 {
        SpecialUse::Multicast
    } else if s[0] == 0x0064 && s[1] == 0xff9b && s[2] == 0 && s[3] == 0 && s[4] == 0 && s[5] == 0 {
        SpecialUse::Nat64
    } else if s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0 && s[4] == 0 && s[5] == 0xffff {
        SpecialUse::Mapped
    } else if s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0 && s[4] == 0 && s[5] == 0 {
        // ::/96 minus :: and ::1, handled above.
        SpecialUse::MappedDeprecated
    } else {
        return AddrClass::Routable;
    };
    AddrClass::Special(special)
}

/// Classify any address against the special-purpose registries.
pub fn classify(addr: IpAddr) -> AddrClass {
    match addr {
        IpAddr::V4(a) => classify_v4(a),
        IpAddr::V6(a) => classify_v6(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    /// Every group 7 glue value from Table 3 must classify as special.
    #[test]
    fn table3_group7_v4_cases() {
        let cases = [
            ("10.11.12.13", SpecialUse::Private),      // v4-private-10
            ("192.0.2.55", SpecialUse::Documentation), // v4-doc
            ("172.16.9.9", SpecialUse::Private),       // v4-private-172
            ("127.0.0.53", SpecialUse::Loopback),      // v4-loopback
            ("192.168.1.1", SpecialUse::Private),      // v4-private-192
            ("240.1.2.3", SpecialUse::Reserved),       // v4-reserved
            ("0.0.0.0", SpecialUse::ThisHost),         // v4-this-host
            ("169.254.7.7", SpecialUse::LinkLocal),    // v4-link-local
        ];
        for (addr, want) in cases {
            assert_eq!(classify(v4(addr)), AddrClass::Special(want), "{addr}");
        }
    }

    /// Every group 6 glue value from Table 3 must classify as special.
    #[test]
    fn table3_group6_v6_cases() {
        let cases = [
            ("::ffff:192.0.2.1", SpecialUse::Mapped),     // v6-mapped
            ("ff02::1", SpecialUse::Multicast),           // v6-multicast
            ("::", SpecialUse::Unspecified),              // v6-unspecified
            ("::c000:201", SpecialUse::MappedDeprecated), // v4-hex
            ("fd00::1234", SpecialUse::UniqueLocal),      // v6-unique-local
            ("2001:db8::77", SpecialUse::Documentation),  // v6-doc
            ("fe80::1", SpecialUse::LinkLocal),           // v6-link-local
            ("::1", SpecialUse::Loopback),                // v6-localhost
            ("64:ff9b::192.0.2.1", SpecialUse::Nat64),    // v6-nat64
        ];
        for (addr, want) in cases {
            assert_eq!(
                classify(addr.parse().unwrap()),
                AddrClass::Special(want),
                "{addr}"
            );
        }
    }

    #[test]
    fn routable_addresses() {
        for addr in ["8.8.8.8", "1.1.1.1", "198.41.0.4", "93.184.216.34"] {
            assert!(classify(v4(addr)).is_routable(), "{addr}");
        }
        for addr in ["2001:500:2::c", "2606:4700::1111", "2a00:1450:4007::8a"] {
            assert!(classify(addr.parse().unwrap()).is_routable(), "{addr}");
        }
    }

    #[test]
    fn boundary_cases() {
        assert!(classify(v4("172.15.0.1")).is_routable());
        assert_eq!(
            classify(v4("172.31.255.255")),
            AddrClass::Special(SpecialUse::Private)
        );
        assert!(classify(v4("172.32.0.1")).is_routable());
        assert!(classify(v4("223.255.255.255")).is_routable());
        assert_eq!(
            classify(v4("224.0.0.1")),
            AddrClass::Special(SpecialUse::Multicast)
        );
        assert_eq!(
            classify(v4("239.255.255.255")),
            AddrClass::Special(SpecialUse::Multicast)
        );
        assert_eq!(
            classify(v4("255.255.255.255")),
            AddrClass::Special(SpecialUse::Reserved)
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SpecialUse::Nat64.label(), "nat64");
        assert_eq!(
            SpecialUse::MappedDeprecated.label(),
            "ipv4-compatible (deprecated)"
        );
    }
}
