//! The simulated network: routing, latency, loss, timeouts, fault
//! plans, and the stream (TCP-analogue) channel.

use crate::addr::classify;
use crate::clock::SimClock;
use crate::fault::FaultPlan;
use ede_trace::{TraceEvent, TraceSink, Tracer};
use ede_wire::{Message, Rcode};
use std::collections::HashMap;
use std::fmt;
use std::net::IpAddr;
use std::sync::{Arc, Mutex};

/// What a server does with one query.
pub enum ServerResponse {
    /// Send this message back.
    Reply(Message),
    /// Silently drop the query (the client will time out). Models dead
    /// servers, firewalls, and hosts that never existed.
    Drop,
}

/// A DNS server attached to the network.
///
/// Implementations must be `Send + Sync`: the scanner queries one shared
/// network from many worker threads. Any interior state (counters, flap
/// schedules) must use interior mutability.
pub trait Server: Send + Sync {
    /// Handle one query arriving from `src` at simulated time `now`
    /// (seconds).
    fn handle(&self, query: &Message, src: IpAddr, now: u32) -> ServerResponse;

    /// Handle one query arriving over the stream (TCP-analogue)
    /// channel. Streams carry no payload-size limit, so servers that
    /// truncate oversized datagram answers serve the full answer here.
    /// The default forwards to [`Server::handle`] — correct for every
    /// server whose datagram answers are never truncated.
    fn handle_stream(&self, query: &Message, src: IpAddr, now: u32) -> ServerResponse {
        self.handle(query, src, now)
    }
}

/// Transport-level failures, as a resolver perceives them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetError {
    /// The destination is a special-purpose address — packets can never
    /// be delivered. Carries the same latency cost as a timeout, because
    /// a real resolver cannot tell the difference.
    Unroutable,
    /// No reply within the timeout (dead host, silent drop, loss).
    Timeout,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unroutable => write!(f, "destination unroutable"),
            NetError::Timeout => write!(f, "query timed out"),
        }
    }
}

/// Tunables for the network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// One-way latency charged per delivered query/response pair, in
    /// milliseconds.
    pub rtt_ms: u64,
    /// How long a client waits before declaring a timeout, in
    /// milliseconds.
    pub timeout_ms: u64,
    /// Probability in [0, 1] that any given query is lost. Loss is
    /// decided by a deterministic hash of (seed, dst, query id, qname),
    /// so runs reproduce exactly.
    pub loss_rate: f64,
    /// Seed for the deterministic loss decision.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            rtt_ms: 20,
            timeout_ms: 2_000,
            loss_rate: 0.0,
            seed: 0x0EDE,
        }
    }
}

/// Builder for an immutable [`Network`].
#[derive(Default)]
pub struct NetworkBuilder {
    routes: HashMap<IpAddr, Arc<dyn Server>>,
    config: NetworkConfig,
}

impl NetworkBuilder {
    /// Start an empty network with default config.
    pub fn new() -> Self {
        NetworkBuilder {
            routes: HashMap::new(),
            config: NetworkConfig::default(),
        }
    }

    /// Replace the network config.
    pub fn config(mut self, config: NetworkConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach `server` at `addr`. Registering a special-purpose address
    /// is allowed but pointless: the transport refuses to route to it —
    /// exactly the testbed's bad-glue situation.
    pub fn register(&mut self, addr: IpAddr, server: Arc<dyn Server>) -> &mut Self {
        self.routes.insert(addr, server);
        self
    }

    /// Freeze into a shareable network.
    pub fn build(self, clock: SimClock) -> Network {
        Network {
            routes: self.routes,
            config: self.config,
            clock,
            stats: TrafficStats::default(),
            capture: CaptureCell::default(),
            tracer: TracerCell::default(),
            faults: FaultCell::default(),
        }
    }
}

/// The fault-plan slot, same shape as [`TracerCell`]: no plan attached
/// costs one atomic load per query. The attached plan is paired with
/// the clock reading at attachment time, so plan windows are relative
/// offsets ("a blackhole 5–10 s into the run").
#[derive(Default)]
struct FaultCell {
    enabled: std::sync::atomic::AtomicBool,
    slot: std::sync::RwLock<Option<(Arc<FaultPlan>, u64)>>,
}

impl FaultCell {
    fn set(&self, plan: Option<(Arc<FaultPlan>, u64)>) {
        use std::sync::atomic::Ordering;
        let on = plan.is_some();
        *self.slot.write().expect("no poisoning") = plan;
        self.enabled.store(on, Ordering::Release);
    }

    fn get(&self) -> Option<(Arc<FaultPlan>, u64)> {
        use std::sync::atomic::Ordering;
        if !self.enabled.load(Ordering::Acquire) {
            return None;
        }
        self.slot.read().expect("no poisoning").clone()
    }
}

/// The tracer slot with a lock-free fast path.
///
/// Every query consults the tracer, but a tracer is *attached* only at
/// scan/troubleshoot boundaries. Guarding the slot with a plain `Mutex`
/// made every worker of a scan serialize on it per query — even with
/// tracing disabled. Here the common read is one atomic load: disabled
/// means no lock at all, and when a sink is attached readers share an
/// `RwLock` read lock (writers are rare and brief).
#[derive(Default)]
struct TracerCell {
    enabled: std::sync::atomic::AtomicBool,
    slot: std::sync::RwLock<Tracer>,
}

impl TracerCell {
    fn set(&self, tracer: Tracer) {
        use std::sync::atomic::Ordering;
        let on = tracer.enabled();
        // Order matters when disabling: readers that still see the flag
        // up momentarily grab the (already replaced) disabled tracer,
        // never a stale sink.
        *self.slot.write().expect("no poisoning") = tracer;
        self.enabled.store(on, Ordering::Release);
    }

    fn get(&self) -> Tracer {
        use std::sync::atomic::Ordering;
        if !self.enabled.load(Ordering::Acquire) {
            return Tracer::disabled();
        }
        self.slot.read().expect("no poisoning").clone()
    }
}

/// The capture slot, same shape as [`TracerCell`]: captures are a
/// debugging tool, so the per-query cost while *not* capturing is one
/// atomic load.
#[derive(Default)]
struct CaptureCell {
    enabled: std::sync::atomic::AtomicBool,
    slot: Mutex<Option<Vec<CapturedQuery>>>,
}

impl CaptureCell {
    fn start(&self) {
        use std::sync::atomic::Ordering;
        *self.slot.lock().expect("no poisoning") = Some(Vec::new());
        self.enabled.store(true, Ordering::Release);
    }

    fn take(&self) -> Vec<CapturedQuery> {
        use std::sync::atomic::Ordering;
        self.enabled.store(false, Ordering::Release);
        self.slot
            .lock()
            .expect("no poisoning")
            .take()
            .unwrap_or_default()
    }

    fn recording(&self) -> bool {
        self.enabled.load(std::sync::atomic::Ordering::Acquire)
    }

    fn push(&self, captured: CapturedQuery) {
        if let Some(cap) = self.slot.lock().expect("no poisoning").as_mut() {
            cap.push(captured);
        }
    }
}

/// Counters over everything a network carried — the simulated analogue
/// of the paper's §5 traffic accounting ("peaked at 11.5 K packets per
/// second … 12 hours in total").
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Queries attempted (each costs up to two datagrams).
    pub queries: std::sync::atomic::AtomicU64,
    /// Queries that received a reply.
    pub delivered: std::sync::atomic::AtomicU64,
    /// Queries that failed at the transport (unroutable / timeout / loss).
    pub failed: std::sync::atomic::AtomicU64,
    /// Queries carried over the stream (TCP-analogue) channel. Also
    /// counted in `queries`.
    pub stream_queries: std::sync::atomic::AtomicU64,
    /// UDP replies replaced by their TC=1 truncation by the
    /// response-size model.
    pub truncated: std::sync::atomic::AtomicU64,
    /// Fault-plan decisions that fired (loss, burst, flap, blackhole,
    /// corruption, spike) — one per `FaultInjected` trace event.
    pub faults: std::sync::atomic::AtomicU64,
}

impl TrafficStats {
    /// Snapshot (queries, delivered, failed).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (
            self.queries.load(Relaxed),
            self.delivered.load(Relaxed),
            self.failed.load(Relaxed),
        )
    }

    /// Full snapshot including the robustness-layer counters.
    pub fn snapshot_full(&self) -> TrafficSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        TrafficSnapshot {
            queries: self.queries.load(Relaxed),
            delivered: self.delivered.load(Relaxed),
            failed: self.failed.load(Relaxed),
            stream_queries: self.stream_queries.load(Relaxed),
            truncated: self.truncated.load(Relaxed),
            faults: self.faults.load(Relaxed),
        }
    }
}

/// A frozen copy of [`TrafficStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Queries attempted on either channel.
    pub queries: u64,
    /// Queries that received a reply.
    pub delivered: u64,
    /// Queries that failed at the transport.
    pub failed: u64,
    /// Queries carried over the stream channel (subset of `queries`).
    pub stream_queries: u64,
    /// UDP replies truncated by the response-size model.
    pub truncated: u64,
    /// Fault-plan decisions that fired.
    pub faults: u64,
}

/// One captured query (when capture is enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedQuery {
    /// Destination server.
    pub dst: IpAddr,
    /// Queried name (as a dotted string, to keep the capture cheap).
    pub qname: String,
    /// Queried type, numeric.
    pub qtype: u16,
}

/// The frozen, thread-safe network.
pub struct Network {
    routes: HashMap<IpAddr, Arc<dyn Server>>,
    config: NetworkConfig,
    clock: SimClock,
    stats: TrafficStats,
    capture: CaptureCell,
    tracer: TracerCell,
    faults: FaultCell,
}

/// A sent-but-not-yet-observed exchange, returned by [`Network::send`]
/// and [`Network::send_stream`].
///
/// The outcome (reply, timeout, or unroutable) is already decided —
/// servers are synchronous state machines — but none of its effects have
/// been applied: the clock has not moved, the delivered/failed counters
/// have not ticked, and no `ResponseReceived`/`Timeout` event has been
/// emitted. All of that happens in [`Network::complete`], which consumes
/// the token. Schedulers order tokens by [`InFlight::deadline_ms`] (see
/// [`crate::CompletionQueue`]).
#[derive(Debug)]
pub struct InFlight {
    deadline_ms: u64,
    dst: IpAddr,
    tracer: Tracer,
    qname: String,
    outcome: InFlightOutcome,
}

#[derive(Debug)]
enum InFlightOutcome {
    Reply { msg: Message, latency_ms: u64 },
    Fail { unroutable: bool, error: NetError },
}

impl InFlight {
    /// Absolute virtual-clock instant (milliseconds) at which this
    /// exchange's outcome becomes observable.
    pub fn deadline_ms(&self) -> u64 {
        self.deadline_ms
    }

    /// The destination the query was sent to.
    pub fn dst(&self) -> IpAddr {
        self.dst
    }
}

impl Network {
    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Traffic counters accumulated since the network was built.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Start recording every query (a tcpdump for the simulation —
    /// compare the smoltcp examples' `--pcap` option). Clears any
    /// previous capture.
    pub fn start_capture(&self) {
        self.capture.start();
    }

    /// Stop capturing and return what was recorded.
    pub fn take_capture(&self) -> Vec<CapturedQuery> {
        self.capture.take()
    }

    /// Attach a trace sink: every subsequent query emits `QuerySent`
    /// plus `ResponseReceived`/`Timeout` events stamped with this
    /// network's virtual clock.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        self.tracer
            .set(Tracer::new(sink, Arc::new(self.clock.clone())));
    }

    /// Detach any trace sink.
    pub fn clear_trace_sink(&self) {
        self.tracer.set(Tracer::disabled());
    }

    /// Attach a fault plan. The plan's scheduled windows are measured
    /// from the virtual-clock instant of this call. A no-op plan (see
    /// [`FaultPlan::is_noop`]) is dropped outright, keeping the
    /// fault-free fast path at one atomic load.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        if plan.is_noop() {
            self.faults.set(None);
        } else {
            self.faults
                .set(Some((Arc::new(plan), self.clock.now_millis())));
        }
    }

    /// Detach any fault plan.
    pub fn clear_fault_plan(&self) {
        self.faults.set(None);
    }

    /// The currently attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.get().map(|(plan, _)| plan)
    }

    /// The currently attached tracer (cheap clone; disabled when no
    /// sink is attached — that case costs one atomic load, no lock).
    pub fn tracer(&self) -> Tracer {
        self.tracer.get()
    }

    /// Number of attached servers.
    pub fn server_count(&self) -> usize {
        self.routes.len()
    }

    /// Is anything routable attached at `addr`?
    pub fn has_route(&self, addr: IpAddr) -> bool {
        classify(addr).is_routable() && self.routes.contains_key(&addr)
    }

    /// Send `query` to `dst` from `src` and wait for the reply.
    ///
    /// Latency accounting: a delivered exchange advances the clock by
    /// one RTT; every failure (unroutable, silent drop, loss, no route)
    /// advances it by the full timeout, as the querier has to wait that
    /// long to learn nothing.
    pub fn query(&self, dst: IpAddr, src: IpAddr, query: &Message) -> Result<Message, NetError> {
        use std::sync::atomic::Ordering::Relaxed;
        self.stats.queries.fetch_add(1, Relaxed);
        let tracer = self.tracer.get();
        let recording = self.capture.recording();
        // Rendering the question to a string costs an allocation per
        // query; skip it entirely unless someone is actually watching.
        // A metrics-only sink counts events without reading qnames, so
        // it rides the cheap path too (wants_query_detail is false).
        let (qname, qtype) = if tracer.wants_query_detail() || recording {
            query
                .first_question()
                .map(|q| (q.name.to_string(), q.qtype.to_u16()))
                .unwrap_or_else(|| (String::from("-"), 0))
        } else {
            (String::new(), 0)
        };
        if recording && query.first_question().is_some() {
            self.capture.push(CapturedQuery {
                dst,
                qname: qname.clone(),
                qtype,
            });
        }
        tracer.emit(TraceEvent::QuerySent {
            dst,
            qname: qname.clone(),
            qtype,
            id: query.id,
        });
        let fail = |unroutable: bool| {
            self.clock.advance_millis(self.config.timeout_ms);
            self.stats.failed.fetch_add(1, Relaxed);
            tracer.emit(TraceEvent::Timeout {
                dst,
                qname: qname.clone(),
                unroutable,
            });
        };
        if !classify(dst).is_routable() {
            fail(true);
            return Err(NetError::Unroutable);
        }
        let Some(server) = self.routes.get(&dst) else {
            fail(false);
            return Err(NetError::Timeout);
        };
        let fault = self.faults.get();
        if let Some((plan, epoch_ms)) = &fault {
            let at_ms = self.clock.now_millis().saturating_sub(*epoch_ms);
            if let Some(kind) = plan.unreachable_at(dst, at_ms) {
                self.inject(&tracer, kind, dst);
                fail(false);
                return Err(NetError::Timeout);
            }
            if let Some(kind) = plan.lose_at(dst, at_ms, query) {
                self.inject(&tracer, kind, dst);
                fail(false);
                return Err(NetError::Timeout);
            }
        }
        if self.lose(dst, query) {
            fail(false);
            return Err(NetError::Timeout);
        }
        match server.handle(query, src, self.clock.now_secs()) {
            ServerResponse::Reply(mut msg) => {
                let mut latency_ms = self.config.rtt_ms;
                if let Some((plan, epoch_ms)) = &fault {
                    if plan.corrupt_at(dst, query) {
                        self.inject(&tracer, "corrupt", dst);
                        let mut garbled = Message::response_to(query);
                        garbled.rcode = Rcode::FormErr;
                        // Echo the client's OPT: the damage is to the
                        // payload, not the EDNS negotiation, so resolvers
                        // classify this as a FORMERR rcode failure rather
                        // than "no EDNS support".
                        garbled.edns = query.edns.clone();
                        msg = garbled;
                    }
                    if let Some(limit) = plan.negotiated_limit(query) {
                        if !msg.truncated && msg.encoded_len() > usize::from(limit) {
                            msg = msg.truncated_copy();
                            self.stats.truncated.fetch_add(1, Relaxed);
                        }
                    }
                    let at_ms = self.clock.now_millis().saturating_sub(*epoch_ms);
                    let extra = plan.spike_extra_at(at_ms);
                    if extra > 0 {
                        self.inject(&tracer, "spike", dst);
                        latency_ms += extra;
                    }
                }
                self.clock.advance_millis(latency_ms);
                self.stats.delivered.fetch_add(1, Relaxed);
                tracer.emit(TraceEvent::ResponseReceived {
                    src: dst,
                    rcode: msg.rcode.to_u16(),
                    answers: msg.answers.len(),
                    latency_ms,
                });
                Ok(msg)
            }
            ServerResponse::Drop => {
                fail(false);
                Err(NetError::Timeout)
            }
        }
    }

    /// Send `query` to `dst` from `src` without waiting: the event-driven
    /// half of [`Network::query`].
    ///
    /// All *send-time* effects happen here, in exactly the order the
    /// blocking path applies them — the query counter, capture, the
    /// `QuerySent` trace event, routability and fault-plan checks, the
    /// deterministic loss decision, and the server's handler (servers are
    /// synchronous state machines, so the reply is computed at send time;
    /// only its *observation* is deferred). The returned [`InFlight`]
    /// token carries the absolute virtual-clock deadline at which the
    /// outcome becomes observable; park it in a
    /// [`crate::CompletionQueue`] and hand it back to
    /// [`Network::complete`] when its deadline is the earliest pending
    /// one.
    ///
    /// Determinism: a `send` immediately followed by its `complete` is
    /// event-for-event and timestamp-for-timestamp identical to one
    /// blocking [`Network::query`] call. Every `InFlight` must be
    /// completed, or the traffic counters will show more queries than
    /// outcomes.
    pub fn send(&self, dst: IpAddr, src: IpAddr, query: &Message) -> InFlight {
        use std::sync::atomic::Ordering::Relaxed;
        self.stats.queries.fetch_add(1, Relaxed);
        let tracer = self.tracer.get();
        let recording = self.capture.recording();
        let (qname, qtype) = if tracer.wants_query_detail() || recording {
            query
                .first_question()
                .map(|q| (q.name.to_string(), q.qtype.to_u16()))
                .unwrap_or_else(|| (String::from("-"), 0))
        } else {
            (String::new(), 0)
        };
        if recording && query.first_question().is_some() {
            self.capture.push(CapturedQuery {
                dst,
                qname: qname.clone(),
                qtype,
            });
        }
        tracer.emit(TraceEvent::QuerySent {
            dst,
            qname: qname.clone(),
            qtype,
            id: query.id,
        });
        let now_ms = self.clock.now_millis();
        let fail = |tracer: Tracer, qname: String, unroutable: bool, error: NetError| InFlight {
            deadline_ms: now_ms + self.config.timeout_ms,
            dst,
            tracer,
            qname,
            outcome: InFlightOutcome::Fail { unroutable, error },
        };
        if !classify(dst).is_routable() {
            return fail(tracer, qname, true, NetError::Unroutable);
        }
        let Some(server) = self.routes.get(&dst) else {
            return fail(tracer, qname, false, NetError::Timeout);
        };
        let fault = self.faults.get();
        if let Some((plan, epoch_ms)) = &fault {
            let at_ms = now_ms.saturating_sub(*epoch_ms);
            if let Some(kind) = plan.unreachable_at(dst, at_ms) {
                self.inject(&tracer, kind, dst);
                return fail(tracer, qname, false, NetError::Timeout);
            }
            if let Some(kind) = plan.lose_at(dst, at_ms, query) {
                self.inject(&tracer, kind, dst);
                return fail(tracer, qname, false, NetError::Timeout);
            }
        }
        if self.lose(dst, query) {
            return fail(tracer, qname, false, NetError::Timeout);
        }
        match server.handle(query, src, self.clock.now_secs()) {
            ServerResponse::Reply(mut msg) => {
                let mut latency_ms = self.config.rtt_ms;
                if let Some((plan, epoch_ms)) = &fault {
                    if plan.corrupt_at(dst, query) {
                        self.inject(&tracer, "corrupt", dst);
                        let mut garbled = Message::response_to(query);
                        garbled.rcode = Rcode::FormErr;
                        garbled.edns = query.edns.clone();
                        msg = garbled;
                    }
                    if let Some(limit) = plan.negotiated_limit(query) {
                        if !msg.truncated && msg.encoded_len() > usize::from(limit) {
                            msg = msg.truncated_copy();
                            self.stats.truncated.fetch_add(1, Relaxed);
                        }
                    }
                    let at_ms = now_ms.saturating_sub(*epoch_ms);
                    let extra = plan.spike_extra_at(at_ms);
                    if extra > 0 {
                        self.inject(&tracer, "spike", dst);
                        latency_ms += extra;
                    }
                }
                InFlight {
                    deadline_ms: now_ms + latency_ms,
                    dst,
                    tracer,
                    qname,
                    outcome: InFlightOutcome::Reply { msg, latency_ms },
                }
            }
            ServerResponse::Drop => fail(tracer, qname, false, NetError::Timeout),
        }
    }

    /// Stream-channel counterpart of [`Network::send`]: the event-driven
    /// half of [`Network::query_stream`]. Streams keep their blocking
    /// semantics — two RTTs of latency, exempt from loss, corruption and
    /// truncation — only the outcome's observation is deferred.
    pub fn send_stream(&self, dst: IpAddr, src: IpAddr, query: &Message) -> InFlight {
        use std::sync::atomic::Ordering::Relaxed;
        self.stats.queries.fetch_add(1, Relaxed);
        self.stats.stream_queries.fetch_add(1, Relaxed);
        let tracer = self.tracer.get();
        let qname = if tracer.wants_query_detail() {
            query
                .first_question()
                .map(|q| q.name.to_string())
                .unwrap_or_else(|| String::from("-"))
        } else {
            String::new()
        };
        tracer.emit(TraceEvent::QuerySent {
            dst,
            qname: qname.clone(),
            qtype: query
                .first_question()
                .map(|q| q.qtype.to_u16())
                .unwrap_or(0),
            id: query.id,
        });
        let now_ms = self.clock.now_millis();
        let fail = |tracer: Tracer, qname: String, unroutable: bool, error: NetError| InFlight {
            deadline_ms: now_ms + self.config.timeout_ms,
            dst,
            tracer,
            qname,
            outcome: InFlightOutcome::Fail { unroutable, error },
        };
        if !classify(dst).is_routable() {
            return fail(tracer, qname, true, NetError::Unroutable);
        }
        let Some(server) = self.routes.get(&dst) else {
            return fail(tracer, qname, false, NetError::Timeout);
        };
        if let Some((plan, epoch_ms)) = self.faults.get() {
            let at_ms = now_ms.saturating_sub(epoch_ms);
            if let Some(kind) = plan.unreachable_at(dst, at_ms) {
                self.inject(&tracer, kind, dst);
                return fail(tracer, qname, false, NetError::Timeout);
            }
        }
        match server.handle_stream(query, src, self.clock.now_secs()) {
            ServerResponse::Reply(msg) => {
                let latency_ms = 2 * self.config.rtt_ms;
                InFlight {
                    deadline_ms: now_ms + latency_ms,
                    dst,
                    tracer,
                    qname,
                    outcome: InFlightOutcome::Reply { msg, latency_ms },
                }
            }
            ServerResponse::Drop => fail(tracer, qname, false, NetError::Timeout),
        }
    }

    /// Observe the outcome of an in-flight exchange: the *completion*
    /// half of [`Network::send`] / [`Network::send_stream`].
    ///
    /// Advances the virtual clock **to** the exchange's deadline (a
    /// no-op when another completion already moved time past it), then
    /// applies the outcome-time effects in the blocking path's order:
    /// the delivered/failed counter and the `ResponseReceived` /
    /// `Timeout` trace event.
    pub fn complete(&self, inflight: InFlight) -> Result<Message, NetError> {
        use std::sync::atomic::Ordering::Relaxed;
        self.clock.advance_to_millis(inflight.deadline_ms);
        match inflight.outcome {
            InFlightOutcome::Reply { msg, latency_ms } => {
                self.stats.delivered.fetch_add(1, Relaxed);
                inflight.tracer.emit(TraceEvent::ResponseReceived {
                    src: inflight.dst,
                    rcode: msg.rcode.to_u16(),
                    answers: msg.answers.len(),
                    latency_ms,
                });
                Ok(msg)
            }
            InFlightOutcome::Fail { unroutable, error } => {
                self.stats.failed.fetch_add(1, Relaxed);
                inflight.tracer.emit(TraceEvent::Timeout {
                    dst: inflight.dst,
                    qname: inflight.qname,
                    unroutable,
                });
                Err(error)
            }
        }
    }

    /// Send `query` to `dst` from `src` over the stream (TCP-analogue)
    /// channel and wait for the reply — the truncation-fallback path.
    ///
    /// Streams cost one extra RTT for connection setup, are exempt from
    /// per-datagram loss, corruption, and the response-size model (a
    /// real TCP connection retransmits and carries any size), but still
    /// fail while the destination is flapped or blackholed.
    pub fn query_stream(
        &self,
        dst: IpAddr,
        src: IpAddr,
        query: &Message,
    ) -> Result<Message, NetError> {
        use std::sync::atomic::Ordering::Relaxed;
        self.stats.queries.fetch_add(1, Relaxed);
        self.stats.stream_queries.fetch_add(1, Relaxed);
        let tracer = self.tracer.get();
        let qname = if tracer.wants_query_detail() {
            query
                .first_question()
                .map(|q| q.name.to_string())
                .unwrap_or_else(|| String::from("-"))
        } else {
            String::new()
        };
        tracer.emit(TraceEvent::QuerySent {
            dst,
            qname: qname.clone(),
            qtype: query
                .first_question()
                .map(|q| q.qtype.to_u16())
                .unwrap_or(0),
            id: query.id,
        });
        let fail = |unroutable: bool| {
            self.clock.advance_millis(self.config.timeout_ms);
            self.stats.failed.fetch_add(1, Relaxed);
            tracer.emit(TraceEvent::Timeout {
                dst,
                qname: qname.clone(),
                unroutable,
            });
        };
        if !classify(dst).is_routable() {
            fail(true);
            return Err(NetError::Unroutable);
        }
        let Some(server) = self.routes.get(&dst) else {
            fail(false);
            return Err(NetError::Timeout);
        };
        if let Some((plan, epoch_ms)) = self.faults.get() {
            let at_ms = self.clock.now_millis().saturating_sub(epoch_ms);
            if let Some(kind) = plan.unreachable_at(dst, at_ms) {
                self.inject(&tracer, kind, dst);
                fail(false);
                return Err(NetError::Timeout);
            }
        }
        match server.handle_stream(query, src, self.clock.now_secs()) {
            ServerResponse::Reply(msg) => {
                let latency_ms = 2 * self.config.rtt_ms;
                self.clock.advance_millis(latency_ms);
                self.stats.delivered.fetch_add(1, Relaxed);
                tracer.emit(TraceEvent::ResponseReceived {
                    src: dst,
                    rcode: msg.rcode.to_u16(),
                    answers: msg.answers.len(),
                    latency_ms,
                });
                Ok(msg)
            }
            ServerResponse::Drop => {
                fail(false);
                Err(NetError::Timeout)
            }
        }
    }

    /// Count one fired fault decision and surface it to any tracer.
    fn inject(&self, tracer: &Tracer, kind: &'static str, dst: IpAddr) {
        self.stats
            .faults
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        tracer.emit(TraceEvent::FaultInjected {
            kind: kind.to_string(),
            dst,
        });
    }

    /// Deterministic loss decision (FNV-1a over the flow tuple).
    fn lose(&self, dst: IpAddr, query: &Message) -> bool {
        if self.config.loss_rate <= 0.0 {
            return false;
        }
        let mut h: u64 = 0xcbf29ce484222325 ^ self.config.seed;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        match dst {
            IpAddr::V4(a) => mix(&a.octets()),
            IpAddr::V6(a) => mix(&a.octets()),
        }
        mix(&query.id.to_be_bytes());
        if let Some(q) = query.first_question() {
            mix(&q.name.to_wire());
        }
        (h as f64 / u64::MAX as f64) < self.config.loss_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::{Name, Rcode, RrType};

    /// A server echoing NOERROR to everything.
    struct Echo;
    impl Server for Echo {
        fn handle(&self, query: &Message, _src: IpAddr, _now: u32) -> ServerResponse {
            let mut r = Message::response_to(query);
            r.rcode = Rcode::NoError;
            ServerResponse::Reply(r)
        }
    }

    /// A server that never answers.
    struct BlackHole;
    impl Server for BlackHole {
        fn handle(&self, _q: &Message, _src: IpAddr, _now: u32) -> ServerResponse {
            ServerResponse::Drop
        }
    }

    fn q(id: u16) -> Message {
        Message::query(id, Name::parse("example.com").unwrap(), RrType::A)
    }

    fn client() -> IpAddr {
        "198.51.100.99".parse::<IpAddr>().unwrap() // doc range is fine as src
    }

    #[test]
    fn delivered_query_advances_rtt() {
        let mut b = NetworkBuilder::new();
        b.register("93.184.216.34".parse().unwrap(), Arc::new(Echo));
        let clock = SimClock::new();
        let t0 = clock.now_millis();
        let net = b.build(clock);
        let reply = net
            .query("93.184.216.34".parse().unwrap(), client(), &q(1))
            .unwrap();
        assert!(reply.response);
        assert_eq!(net.clock().now_millis() - t0, 20);
    }

    #[test]
    fn unroutable_special_addresses() {
        let net = NetworkBuilder::new().build(SimClock::new());
        for dst in ["10.0.0.1", "192.0.2.1", "127.0.0.1", "0.0.0.0"] {
            assert_eq!(
                net.query(dst.parse().unwrap(), client(), &q(2)),
                Err(NetError::Unroutable),
                "{dst}"
            );
        }
        assert_eq!(
            net.query("fe80::1".parse().unwrap(), client(), &q(3)),
            Err(NetError::Unroutable)
        );
    }

    #[test]
    fn unregistered_routable_address_times_out() {
        let net = NetworkBuilder::new().build(SimClock::new());
        let t0 = net.clock().now_millis();
        assert_eq!(
            net.query("93.184.216.34".parse().unwrap(), client(), &q(4)),
            Err(NetError::Timeout)
        );
        assert_eq!(net.clock().now_millis() - t0, 2_000);
    }

    #[test]
    fn black_hole_times_out() {
        let mut b = NetworkBuilder::new();
        b.register("93.184.216.34".parse().unwrap(), Arc::new(BlackHole));
        let net = b.build(SimClock::new());
        assert_eq!(
            net.query("93.184.216.34".parse().unwrap(), client(), &q(5)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn send_complete_matches_blocking_query_exactly() {
        use ede_trace::ResolutionTrace;

        // Two identically-built worlds: one driven blocking, one split.
        let build = || {
            let mut b = NetworkBuilder::new();
            b.register("93.184.216.34".parse().unwrap(), Arc::new(Echo));
            b.register("93.184.216.35".parse().unwrap(), Arc::new(BlackHole));
            let net = b.build(SimClock::new());
            let trace = Arc::new(ResolutionTrace::new(64));
            net.set_trace_sink(trace.clone());
            (net, trace)
        };
        let exchanges: Vec<(IpAddr, u16)> = vec![
            ("93.184.216.34".parse().unwrap(), 1), // delivered
            ("93.184.216.35".parse().unwrap(), 2), // dropped -> timeout
            ("192.0.2.1".parse().unwrap(), 3),     // unroutable
            ("93.184.216.99".parse().unwrap(), 4), // no route
            ("93.184.216.34".parse().unwrap(), 5), // delivered again
        ];

        let (blocking, blocking_trace) = build();
        let blocking_results: Vec<_> = exchanges
            .iter()
            .map(|&(dst, id)| blocking.query(dst, client(), &q(id)))
            .collect();

        let (split, split_trace) = build();
        let split_results: Vec<_> = exchanges
            .iter()
            .map(|&(dst, id)| {
                let inflight = split.send(dst, client(), &q(id));
                split.complete(inflight)
            })
            .collect();

        assert_eq!(blocking_results, split_results);
        assert_eq!(blocking_trace.events(), split_trace.events());
        assert_eq!(blocking.clock().now_millis(), split.clock().now_millis());
        assert_eq!(
            blocking.stats().snapshot_full(),
            split.stats().snapshot_full()
        );
    }

    #[test]
    fn overlapping_sends_share_virtual_time() {
        // Two in-flight exchanges sent at the same instant complete at
        // the same deadline: the clock advances one RTT total, not two.
        let mut b = NetworkBuilder::new();
        b.register("93.184.216.34".parse().unwrap(), Arc::new(Echo));
        let net = b.build(SimClock::new());
        let t0 = net.clock().now_millis();
        let a = net.send("93.184.216.34".parse().unwrap(), client(), &q(1));
        let b2 = net.send("93.184.216.34".parse().unwrap(), client(), &q(2));
        assert_eq!(a.deadline_ms(), t0 + 20);
        assert_eq!(b2.deadline_ms(), t0 + 20);
        assert_eq!(net.clock().now_millis(), t0, "send must not move time");
        net.complete(a).unwrap();
        net.complete(b2).unwrap();
        assert_eq!(net.clock().now_millis(), t0 + 20);
        let (q_total, delivered, failed) = net.stats().snapshot();
        assert_eq!((q_total, delivered, failed), (2, 2, 0));
    }

    #[test]
    fn send_stream_matches_blocking_stream() {
        struct StreamEcho;
        impl Server for StreamEcho {
            fn handle(&self, q: &Message, _src: IpAddr, _now: u32) -> ServerResponse {
                ServerResponse::Reply(Message::response_to(q))
            }
        }
        let build = || {
            let mut b = NetworkBuilder::new();
            b.register("93.184.216.34".parse().unwrap(), Arc::new(StreamEcho));
            b.build(SimClock::new())
        };
        let blocking = build();
        let split = build();
        let want = blocking.query_stream("93.184.216.34".parse().unwrap(), client(), &q(7));
        let inflight = split.send_stream("93.184.216.34".parse().unwrap(), client(), &q(7));
        let got = split.complete(inflight);
        assert_eq!(want, got);
        assert_eq!(blocking.clock().now_millis(), split.clock().now_millis());
        assert_eq!(
            blocking.stats().snapshot_full(),
            split.stats().snapshot_full()
        );
    }

    #[test]
    fn loss_is_deterministic_and_roughly_calibrated() {
        let mut b = NetworkBuilder::new();
        b.register("93.184.216.34".parse().unwrap(), Arc::new(Echo));
        let net = b
            .config(NetworkConfig {
                loss_rate: 0.3,
                ..Default::default()
            })
            .build(SimClock::new());

        let outcomes: Vec<bool> = (0..500)
            .map(|i| {
                net.query("93.184.216.34".parse().unwrap(), client(), &q(i))
                    .is_ok()
            })
            .collect();
        let again: Vec<bool> = (0..500)
            .map(|i| {
                net.query("93.184.216.34".parse().unwrap(), client(), &q(i))
                    .is_ok()
            })
            .collect();
        assert_eq!(outcomes, again, "loss must be deterministic per flow");
        let delivered = outcomes.iter().filter(|&&ok| ok).count();
        assert!(
            (250..=450).contains(&delivered),
            "~70% delivery expected, got {delivered}/500"
        );
    }

    /// A server whose answers are large enough to exceed any sane UDP
    /// payload cap.
    struct BigAnswer;
    impl Server for BigAnswer {
        fn handle(&self, query: &Message, _src: IpAddr, _now: u32) -> ServerResponse {
            use ede_wire::{Rdata, Record};
            let mut r = Message::response_to(query);
            r.edns = Some(ede_wire::Edns::default());
            for i in 0..40 {
                r.answers.push(Record::new(
                    Name::parse(&format!("r{i}.example.com")).unwrap(),
                    60,
                    Rdata::Txt(vec![vec![b'x'; 60]]),
                ));
            }
            ServerResponse::Reply(r)
        }
    }

    #[test]
    fn stream_channel_costs_two_rtts_and_skips_truncation() {
        let dst: IpAddr = "93.184.216.34".parse().unwrap();
        let mut b = NetworkBuilder::new();
        b.register(dst, Arc::new(BigAnswer));
        let net = b.build(SimClock::new());
        net.set_fault_plan(FaultPlan::new(1).with_udp_payload_limit(1232));

        // The datagram path truncates the oversized reply.
        let udp = net.query(dst, client(), &q(1)).unwrap();
        assert!(udp.truncated);
        assert!(udp.answers.is_empty());

        // The stream path serves it whole, at handshake + exchange cost.
        let t0 = net.clock().now_millis();
        let tcp = net.query_stream(dst, client(), &q(2)).unwrap();
        assert!(!tcp.truncated);
        assert_eq!(tcp.answers.len(), 40);
        assert_eq!(net.clock().now_millis() - t0, 40);

        let full = net.stats().snapshot_full();
        assert_eq!(full.queries, 2);
        assert_eq!(full.stream_queries, 1);
        assert_eq!(full.truncated, 1);
        assert_eq!(full.faults, 0, "truncation is protocol, not a fault");
    }

    #[test]
    fn truncation_respects_client_advertisement() {
        let dst: IpAddr = "93.184.216.34".parse().unwrap();
        let mut b = NetworkBuilder::new();
        b.register(dst, Arc::new(BigAnswer));
        let net = b.build(SimClock::new());
        // Generous link cap: the reply (~3 KB) still exceeds the
        // client's own 1232-byte advertisement.
        net.set_fault_plan(FaultPlan::new(1).with_udp_payload_limit(60_000));
        assert!(net.query(dst, client(), &q(1)).unwrap().truncated);
    }

    #[test]
    fn blackhole_window_darkens_and_recovers() {
        let dst: IpAddr = "93.184.216.34".parse().unwrap();
        let mut b = NetworkBuilder::new();
        b.register(dst, Arc::new(Echo));
        let net = b
            .config(NetworkConfig {
                rtt_ms: 10,
                timeout_ms: 100,
                ..Default::default()
            })
            .build(SimClock::new());
        net.set_fault_plan(FaultPlan::new(1).with_blackhole(crate::fault::Blackhole {
            target: crate::fault::FaultTarget::Addr(dst),
            start_ms: 0,
            end_ms: 150,
        }));

        // Two timeouts burn 200 ms of virtual clock; the window closes.
        assert_eq!(net.query(dst, client(), &q(1)), Err(NetError::Timeout));
        assert_eq!(net.query(dst, client(), &q(2)), Err(NetError::Timeout));
        assert!(net.query(dst, client(), &q(3)).is_ok());
        // The stream channel was equally dark during the window.
        net.set_fault_plan(FaultPlan::new(1).with_blackhole(crate::fault::Blackhole {
            target: crate::fault::FaultTarget::All,
            start_ms: 0,
            end_ms: 50,
        }));
        assert_eq!(
            net.query_stream(dst, client(), &q(4)),
            Err(NetError::Timeout)
        );
        assert_eq!(net.stats().snapshot_full().faults, 3);
    }

    #[test]
    fn injected_loss_is_deterministic_and_counted() {
        let dst: IpAddr = "93.184.216.34".parse().unwrap();
        let run = || {
            let mut b = NetworkBuilder::new();
            b.register(dst, Arc::new(Echo));
            let net = b.build(SimClock::new());
            net.set_fault_plan(FaultPlan::new(99).with_loss(0.25).with_corruption(0.1));
            let outcomes: Vec<u16> = (0..400)
                .map(|i| match net.query(dst, client(), &q(i)) {
                    Ok(m) => m.rcode.to_u16(),
                    Err(_) => u16::MAX,
                })
                .collect();
            (outcomes, net.stats().snapshot_full())
        };
        let (first, stats) = run();
        let (again, _) = run();
        assert_eq!(first, again, "fault decisions must be reproducible");
        let lost = first.iter().filter(|&&r| r == u16::MAX).count();
        let corrupted = first.iter().filter(|&&r| r == 1).count();
        assert!((60..=140).contains(&lost), "~25% loss, got {lost}/400");
        assert!(
            (15..=70).contains(&corrupted),
            "~10% FORMERR, got {corrupted}/400"
        );
        assert_eq!(stats.faults as usize, lost + corrupted);
        assert_eq!(stats.failed as usize, lost);
    }

    #[test]
    fn noop_plan_changes_nothing() {
        let dst: IpAddr = "93.184.216.34".parse().unwrap();
        let mut b = NetworkBuilder::new();
        b.register(dst, Arc::new(Echo));
        let net = b.build(SimClock::new());
        net.set_fault_plan(FaultPlan::intensity(5, 0.0));
        assert!(net.fault_plan().is_none(), "no-op plans are dropped");
        assert!(net.query(dst, client(), &q(1)).is_ok());
    }

    #[test]
    fn config_builder_order() {
        let mut b = NetworkBuilder::new();
        b.register("1.2.3.4".parse().unwrap(), Arc::new(Echo));
        let net = b
            .config(NetworkConfig {
                rtt_ms: 7,
                ..Default::default()
            })
            .build(SimClock::new());
        let t0 = net.clock().now_millis();
        net.query("1.2.3.4".parse().unwrap(), client(), &q(9))
            .unwrap();
        assert_eq!(net.clock().now_millis() - t0, 7);
    }
}
