//! The simulated network: routing, latency, loss, timeouts.

use crate::addr::classify;
use crate::clock::SimClock;
use ede_trace::{TraceEvent, TraceSink, Tracer};
use ede_wire::Message;
use std::collections::HashMap;
use std::fmt;
use std::net::IpAddr;
use std::sync::{Arc, Mutex};

/// What a server does with one query.
pub enum ServerResponse {
    /// Send this message back.
    Reply(Message),
    /// Silently drop the query (the client will time out). Models dead
    /// servers, firewalls, and hosts that never existed.
    Drop,
}

/// A DNS server attached to the network.
///
/// Implementations must be `Send + Sync`: the scanner queries one shared
/// network from many worker threads. Any interior state (counters, flap
/// schedules) must use interior mutability.
pub trait Server: Send + Sync {
    /// Handle one query arriving from `src` at simulated time `now`
    /// (seconds).
    fn handle(&self, query: &Message, src: IpAddr, now: u32) -> ServerResponse;
}

/// Transport-level failures, as a resolver perceives them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetError {
    /// The destination is a special-purpose address — packets can never
    /// be delivered. Carries the same latency cost as a timeout, because
    /// a real resolver cannot tell the difference.
    Unroutable,
    /// No reply within the timeout (dead host, silent drop, loss).
    Timeout,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unroutable => write!(f, "destination unroutable"),
            NetError::Timeout => write!(f, "query timed out"),
        }
    }
}

/// Tunables for the network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// One-way latency charged per delivered query/response pair, in
    /// milliseconds.
    pub rtt_ms: u64,
    /// How long a client waits before declaring a timeout, in
    /// milliseconds.
    pub timeout_ms: u64,
    /// Probability in [0, 1] that any given query is lost. Loss is
    /// decided by a deterministic hash of (seed, dst, query id, qname),
    /// so runs reproduce exactly.
    pub loss_rate: f64,
    /// Seed for the deterministic loss decision.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            rtt_ms: 20,
            timeout_ms: 2_000,
            loss_rate: 0.0,
            seed: 0x0EDE,
        }
    }
}

/// Builder for an immutable [`Network`].
#[derive(Default)]
pub struct NetworkBuilder {
    routes: HashMap<IpAddr, Arc<dyn Server>>,
    config: NetworkConfig,
}

impl NetworkBuilder {
    /// Start an empty network with default config.
    pub fn new() -> Self {
        NetworkBuilder {
            routes: HashMap::new(),
            config: NetworkConfig::default(),
        }
    }

    /// Replace the network config.
    pub fn config(mut self, config: NetworkConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach `server` at `addr`. Registering a special-purpose address
    /// is allowed but pointless: the transport refuses to route to it —
    /// exactly the testbed's bad-glue situation.
    pub fn register(&mut self, addr: IpAddr, server: Arc<dyn Server>) -> &mut Self {
        self.routes.insert(addr, server);
        self
    }

    /// Freeze into a shareable network.
    pub fn build(self, clock: SimClock) -> Network {
        Network {
            routes: self.routes,
            config: self.config,
            clock,
            stats: TrafficStats::default(),
            capture: CaptureCell::default(),
            tracer: TracerCell::default(),
        }
    }
}

/// The tracer slot with a lock-free fast path.
///
/// Every query consults the tracer, but a tracer is *attached* only at
/// scan/troubleshoot boundaries. Guarding the slot with a plain `Mutex`
/// made every worker of a scan serialize on it per query — even with
/// tracing disabled. Here the common read is one atomic load: disabled
/// means no lock at all, and when a sink is attached readers share an
/// `RwLock` read lock (writers are rare and brief).
#[derive(Default)]
struct TracerCell {
    enabled: std::sync::atomic::AtomicBool,
    slot: std::sync::RwLock<Tracer>,
}

impl TracerCell {
    fn set(&self, tracer: Tracer) {
        use std::sync::atomic::Ordering;
        let on = tracer.enabled();
        // Order matters when disabling: readers that still see the flag
        // up momentarily grab the (already replaced) disabled tracer,
        // never a stale sink.
        *self.slot.write().expect("no poisoning") = tracer;
        self.enabled.store(on, Ordering::Release);
    }

    fn get(&self) -> Tracer {
        use std::sync::atomic::Ordering;
        if !self.enabled.load(Ordering::Acquire) {
            return Tracer::disabled();
        }
        self.slot.read().expect("no poisoning").clone()
    }
}

/// The capture slot, same shape as [`TracerCell`]: captures are a
/// debugging tool, so the per-query cost while *not* capturing is one
/// atomic load.
#[derive(Default)]
struct CaptureCell {
    enabled: std::sync::atomic::AtomicBool,
    slot: Mutex<Option<Vec<CapturedQuery>>>,
}

impl CaptureCell {
    fn start(&self) {
        use std::sync::atomic::Ordering;
        *self.slot.lock().expect("no poisoning") = Some(Vec::new());
        self.enabled.store(true, Ordering::Release);
    }

    fn take(&self) -> Vec<CapturedQuery> {
        use std::sync::atomic::Ordering;
        self.enabled.store(false, Ordering::Release);
        self.slot
            .lock()
            .expect("no poisoning")
            .take()
            .unwrap_or_default()
    }

    fn recording(&self) -> bool {
        self.enabled.load(std::sync::atomic::Ordering::Acquire)
    }

    fn push(&self, captured: CapturedQuery) {
        if let Some(cap) = self.slot.lock().expect("no poisoning").as_mut() {
            cap.push(captured);
        }
    }
}

/// Counters over everything a network carried — the simulated analogue
/// of the paper's §5 traffic accounting ("peaked at 11.5 K packets per
/// second … 12 hours in total").
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Queries attempted (each costs up to two datagrams).
    pub queries: std::sync::atomic::AtomicU64,
    /// Queries that received a reply.
    pub delivered: std::sync::atomic::AtomicU64,
    /// Queries that failed at the transport (unroutable / timeout / loss).
    pub failed: std::sync::atomic::AtomicU64,
}

impl TrafficStats {
    /// Snapshot (queries, delivered, failed).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (
            self.queries.load(Relaxed),
            self.delivered.load(Relaxed),
            self.failed.load(Relaxed),
        )
    }
}

/// One captured query (when capture is enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedQuery {
    /// Destination server.
    pub dst: IpAddr,
    /// Queried name (as a dotted string, to keep the capture cheap).
    pub qname: String,
    /// Queried type, numeric.
    pub qtype: u16,
}

/// The frozen, thread-safe network.
pub struct Network {
    routes: HashMap<IpAddr, Arc<dyn Server>>,
    config: NetworkConfig,
    clock: SimClock,
    stats: TrafficStats,
    capture: CaptureCell,
    tracer: TracerCell,
}

impl Network {
    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Traffic counters accumulated since the network was built.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Start recording every query (a tcpdump for the simulation —
    /// compare the smoltcp examples' `--pcap` option). Clears any
    /// previous capture.
    pub fn start_capture(&self) {
        self.capture.start();
    }

    /// Stop capturing and return what was recorded.
    pub fn take_capture(&self) -> Vec<CapturedQuery> {
        self.capture.take()
    }

    /// Attach a trace sink: every subsequent query emits `QuerySent`
    /// plus `ResponseReceived`/`Timeout` events stamped with this
    /// network's virtual clock.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        self.tracer
            .set(Tracer::new(sink, Arc::new(self.clock.clone())));
    }

    /// Detach any trace sink.
    pub fn clear_trace_sink(&self) {
        self.tracer.set(Tracer::disabled());
    }

    /// The currently attached tracer (cheap clone; disabled when no
    /// sink is attached — that case costs one atomic load, no lock).
    pub fn tracer(&self) -> Tracer {
        self.tracer.get()
    }

    /// Number of attached servers.
    pub fn server_count(&self) -> usize {
        self.routes.len()
    }

    /// Is anything routable attached at `addr`?
    pub fn has_route(&self, addr: IpAddr) -> bool {
        classify(addr).is_routable() && self.routes.contains_key(&addr)
    }

    /// Send `query` to `dst` from `src` and wait for the reply.
    ///
    /// Latency accounting: a delivered exchange advances the clock by
    /// one RTT; every failure (unroutable, silent drop, loss, no route)
    /// advances it by the full timeout, as the querier has to wait that
    /// long to learn nothing.
    pub fn query(&self, dst: IpAddr, src: IpAddr, query: &Message) -> Result<Message, NetError> {
        use std::sync::atomic::Ordering::Relaxed;
        self.stats.queries.fetch_add(1, Relaxed);
        let tracer = self.tracer.get();
        let recording = self.capture.recording();
        // Rendering the question to a string costs an allocation per
        // query; skip it entirely unless someone is actually watching.
        // A metrics-only sink counts events without reading qnames, so
        // it rides the cheap path too (wants_query_detail is false).
        let (qname, qtype) = if tracer.wants_query_detail() || recording {
            query
                .first_question()
                .map(|q| (q.name.to_string(), q.qtype.to_u16()))
                .unwrap_or_else(|| (String::from("-"), 0))
        } else {
            (String::new(), 0)
        };
        if recording && query.first_question().is_some() {
            self.capture.push(CapturedQuery {
                dst,
                qname: qname.clone(),
                qtype,
            });
        }
        tracer.emit(TraceEvent::QuerySent {
            dst,
            qname: qname.clone(),
            qtype,
            id: query.id,
        });
        let fail = |unroutable: bool| {
            self.clock.advance_millis(self.config.timeout_ms);
            self.stats.failed.fetch_add(1, Relaxed);
            tracer.emit(TraceEvent::Timeout {
                dst,
                qname: qname.clone(),
                unroutable,
            });
        };
        if !classify(dst).is_routable() {
            fail(true);
            return Err(NetError::Unroutable);
        }
        let Some(server) = self.routes.get(&dst) else {
            fail(false);
            return Err(NetError::Timeout);
        };
        if self.lose(dst, query) {
            fail(false);
            return Err(NetError::Timeout);
        }
        match server.handle(query, src, self.clock.now_secs()) {
            ServerResponse::Reply(msg) => {
                self.clock.advance_millis(self.config.rtt_ms);
                self.stats.delivered.fetch_add(1, Relaxed);
                tracer.emit(TraceEvent::ResponseReceived {
                    src: dst,
                    rcode: msg.rcode.to_u16(),
                    answers: msg.answers.len(),
                    latency_ms: self.config.rtt_ms,
                });
                Ok(msg)
            }
            ServerResponse::Drop => {
                fail(false);
                Err(NetError::Timeout)
            }
        }
    }

    /// Deterministic loss decision (FNV-1a over the flow tuple).
    fn lose(&self, dst: IpAddr, query: &Message) -> bool {
        if self.config.loss_rate <= 0.0 {
            return false;
        }
        let mut h: u64 = 0xcbf29ce484222325 ^ self.config.seed;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        match dst {
            IpAddr::V4(a) => mix(&a.octets()),
            IpAddr::V6(a) => mix(&a.octets()),
        }
        mix(&query.id.to_be_bytes());
        if let Some(q) = query.first_question() {
            mix(&q.name.to_wire());
        }
        (h as f64 / u64::MAX as f64) < self.config.loss_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::{Name, Rcode, RrType};

    /// A server echoing NOERROR to everything.
    struct Echo;
    impl Server for Echo {
        fn handle(&self, query: &Message, _src: IpAddr, _now: u32) -> ServerResponse {
            let mut r = Message::response_to(query);
            r.rcode = Rcode::NoError;
            ServerResponse::Reply(r)
        }
    }

    /// A server that never answers.
    struct BlackHole;
    impl Server for BlackHole {
        fn handle(&self, _q: &Message, _src: IpAddr, _now: u32) -> ServerResponse {
            ServerResponse::Drop
        }
    }

    fn q(id: u16) -> Message {
        Message::query(id, Name::parse("example.com").unwrap(), RrType::A)
    }

    fn client() -> IpAddr {
        "198.51.100.99".parse::<IpAddr>().unwrap() // doc range is fine as src
    }

    #[test]
    fn delivered_query_advances_rtt() {
        let mut b = NetworkBuilder::new();
        b.register("93.184.216.34".parse().unwrap(), Arc::new(Echo));
        let clock = SimClock::new();
        let t0 = clock.now_millis();
        let net = b.build(clock);
        let reply = net
            .query("93.184.216.34".parse().unwrap(), client(), &q(1))
            .unwrap();
        assert!(reply.response);
        assert_eq!(net.clock().now_millis() - t0, 20);
    }

    #[test]
    fn unroutable_special_addresses() {
        let net = NetworkBuilder::new().build(SimClock::new());
        for dst in ["10.0.0.1", "192.0.2.1", "127.0.0.1", "0.0.0.0"] {
            assert_eq!(
                net.query(dst.parse().unwrap(), client(), &q(2)),
                Err(NetError::Unroutable),
                "{dst}"
            );
        }
        assert_eq!(
            net.query("fe80::1".parse().unwrap(), client(), &q(3)),
            Err(NetError::Unroutable)
        );
    }

    #[test]
    fn unregistered_routable_address_times_out() {
        let net = NetworkBuilder::new().build(SimClock::new());
        let t0 = net.clock().now_millis();
        assert_eq!(
            net.query("93.184.216.34".parse().unwrap(), client(), &q(4)),
            Err(NetError::Timeout)
        );
        assert_eq!(net.clock().now_millis() - t0, 2_000);
    }

    #[test]
    fn black_hole_times_out() {
        let mut b = NetworkBuilder::new();
        b.register("93.184.216.34".parse().unwrap(), Arc::new(BlackHole));
        let net = b.build(SimClock::new());
        assert_eq!(
            net.query("93.184.216.34".parse().unwrap(), client(), &q(5)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn loss_is_deterministic_and_roughly_calibrated() {
        let mut b = NetworkBuilder::new();
        b.register("93.184.216.34".parse().unwrap(), Arc::new(Echo));
        let net = b
            .config(NetworkConfig {
                loss_rate: 0.3,
                ..Default::default()
            })
            .build(SimClock::new());

        let outcomes: Vec<bool> = (0..500)
            .map(|i| {
                net.query("93.184.216.34".parse().unwrap(), client(), &q(i))
                    .is_ok()
            })
            .collect();
        let again: Vec<bool> = (0..500)
            .map(|i| {
                net.query("93.184.216.34".parse().unwrap(), client(), &q(i))
                    .is_ok()
            })
            .collect();
        assert_eq!(outcomes, again, "loss must be deterministic per flow");
        let delivered = outcomes.iter().filter(|&&ok| ok).count();
        assert!(
            (250..=450).contains(&delivered),
            "~70% delivery expected, got {delivered}/500"
        );
    }

    #[test]
    fn config_builder_order() {
        let mut b = NetworkBuilder::new();
        b.register("1.2.3.4".parse().unwrap(), Arc::new(Echo));
        let net = b
            .config(NetworkConfig {
                rtt_ms: 7,
                ..Default::default()
            })
            .build(SimClock::new());
        let t0 = net.clock().now_millis();
        net.query("1.2.3.4".parse().unwrap(), client(), &q(9))
            .unwrap();
        assert_eq!(net.clock().now_millis() - t0, 7);
    }
}
