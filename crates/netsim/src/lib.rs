//! Deterministic simulated internet for the EDE reproduction.
//!
//! The paper's measurements depend on *network-visible* behaviour:
//! nameservers that time out, refuse, answer from special-purpose
//! addresses that can never route, and links that add latency. This crate
//! models exactly that and nothing more:
//!
//! * [`clock`] — a shared virtual clock. Time advances only through
//!   simulated link latency and timeouts, so runs are bit-reproducible.
//! * [`addr`] — classification of IPv4/IPv6 special-purpose addresses
//!   (IANA registries, RFC 6890). The testbed's invalid-glue groups 6–7
//!   are built directly on these ranges.
//! * [`transport`] — the network itself: a routing table from `IpAddr` to
//!   [`Server`] instances, with per-query latency, deterministic loss,
//!   unroutability for special addresses, and a stream (TCP-analogue)
//!   channel for truncation fallback. Exchanges come in two shapes: the
//!   blocking `query` call, and the event-driven `send`/`complete` pair
//!   that lets one thread keep thousands of exchanges in flight.
//! * [`completion`] — the deterministic completion-event queue the
//!   event-driven shape schedules against (deadline order, FIFO among
//!   ties). `docs/CONCURRENCY.md` specifies the full model.
//! * [`fault`] — composable, deterministic fault plans scheduled on the
//!   virtual clock: loss bursts, latency spikes, link flaps, NS
//!   blackholes, response corruption, and the response-size model that
//!   sets the TC bit on oversized UDP replies.
//!
//! The design is sans-IO in the smoltcp tradition: servers are state
//! machines handling one message at a time; no sockets, no threads, no
//! wall-clock time anywhere in the data path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod clock;
pub mod completion;
pub mod fault;
pub mod transport;

pub use addr::{classify, AddrClass, SpecialUse};
pub use clock::SimClock;
pub use completion::CompletionQueue;
pub use fault::{Blackhole, FaultPlan, FaultTarget, LatencySpike, LinkFlap, LossBurst};
pub use transport::{
    CapturedQuery, InFlight, NetError, Network, NetworkBuilder, NetworkConfig, Server,
    ServerResponse, TrafficSnapshot, TrafficStats,
};
