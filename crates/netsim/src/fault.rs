//! Composable, deterministic fault plans for the simulated network.
//!
//! A [`FaultPlan`] describes *how the network degrades* independently of
//! the servers attached to it: uniform loss, clock-scheduled loss
//! bursts, latency spikes, flapping links, hard blackhole windows,
//! response corruption, and a response-size model that truncates UDP
//! replies exceeding the negotiated EDNS payload size.
//!
//! Every probabilistic decision is a deterministic FNV-1a hash over
//! `(plan seed, fault kind, destination, message id, qname)` — the same
//! scheme the base transport uses for its `loss_rate` — so a run with a
//! given seed reproduces bit-for-bit. Scheduled faults (bursts, spikes,
//! flaps, blackholes) are windows on the **virtual clock**, measured
//! from the instant the plan was attached with
//! [`crate::Network::set_fault_plan`].
//!
//! Attach a plan to a [`crate::Network`] and watch it fire through the
//! `FaultInjected` trace events; [`crate::TrafficStats`] counts the same
//! decisions for sinkless reconciliation.

use ede_wire::Message;
use std::net::IpAddr;

/// Which destinations a scheduled fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every destination on the network.
    All,
    /// One specific server address (a mid-resolution NS blackhole).
    Addr(IpAddr),
}

impl FaultTarget {
    /// Does this target cover `dst`?
    pub fn matches(&self, dst: IpAddr) -> bool {
        match self {
            FaultTarget::All => true,
            FaultTarget::Addr(a) => *a == dst,
        }
    }
}

/// A window of elevated loss on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossBurst {
    /// Window start, milliseconds after plan attachment.
    pub start_ms: u64,
    /// Window end (exclusive), milliseconds after plan attachment.
    pub end_ms: u64,
    /// Loss probability in `[0, 1]` while the window is active.
    pub rate: f64,
}

/// A window of added one-way latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySpike {
    /// Window start, milliseconds after plan attachment.
    pub start_ms: u64,
    /// Window end (exclusive), milliseconds after plan attachment.
    pub end_ms: u64,
    /// Extra latency charged per delivered exchange in the window.
    pub extra_ms: u64,
}

/// A periodically flapping link: within every `period_ms` cycle the
/// target is unreachable for the first `down_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// Which destinations flap.
    pub target: FaultTarget,
    /// Full up+down cycle length, milliseconds.
    pub period_ms: u64,
    /// Leading portion of each cycle during which the link is down.
    pub down_ms: u64,
}

/// A hard unreachability window for a target — the "NS goes dark
/// mid-resolution" scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blackhole {
    /// Which destinations go dark.
    pub target: FaultTarget,
    /// Window start, milliseconds after plan attachment.
    pub start_ms: u64,
    /// Window end (exclusive), milliseconds after plan attachment.
    pub end_ms: u64,
}

/// A composable, deterministic fault plan.
///
/// The empty plan ([`FaultPlan::new`] with no knobs turned) injects
/// nothing: attaching it leaves the network's behavior bit-identical to
/// having no plan at all.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FaultPlan {
    /// Seed for every probabilistic decision this plan makes.
    pub seed: u64,
    /// Uniform extra loss probability in `[0, 1]`.
    pub loss: f64,
    /// Probability in `[0, 1]` that a delivered reply arrives garbled —
    /// modeled as the server answering FORMERR with empty sections.
    pub corrupt: f64,
    /// Scheduled loss windows.
    pub bursts: Vec<LossBurst>,
    /// Scheduled latency windows.
    pub spikes: Vec<LatencySpike>,
    /// Flapping links.
    pub flaps: Vec<LinkFlap>,
    /// Hard unreachability windows.
    pub blackholes: Vec<Blackhole>,
    /// Response-size model: when set, a UDP reply larger than
    /// `min(this, the client's advertised EDNS payload size)` is
    /// replaced by its TC=1 truncation (the stream channel is exempt).
    pub udp_payload_limit: Option<u16>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0x0EDE_FA17)
    }
}

impl FaultPlan {
    /// An empty (no-op) plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss: 0.0,
            corrupt: 0.0,
            bursts: Vec::new(),
            spikes: Vec::new(),
            flaps: Vec::new(),
            blackholes: Vec::new(),
            udp_payload_limit: None,
        }
    }

    /// A plan whose probabilistic knobs all scale with one `intensity`
    /// in `[0, 1]`: loss = intensity, corruption = intensity / 4, and —
    /// above zero — the RFC 9715-recommended 1232-byte payload cap so
    /// oversized answers exercise the TC/stream path. Intensity 0 is the
    /// no-op plan.
    pub fn intensity(seed: u64, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::new(seed);
        if i > 0.0 {
            plan.loss = i;
            plan.corrupt = i / 4.0;
            plan.udp_payload_limit = Some(1232);
        }
        plan
    }

    /// Set the uniform extra loss probability.
    pub fn with_loss(mut self, rate: f64) -> Self {
        self.loss = rate;
        self
    }

    /// Set the response-corruption probability.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corrupt = rate;
        self
    }

    /// Add a scheduled loss burst.
    pub fn with_burst(mut self, burst: LossBurst) -> Self {
        self.bursts.push(burst);
        self
    }

    /// Add a scheduled latency spike.
    pub fn with_spike(mut self, spike: LatencySpike) -> Self {
        self.spikes.push(spike);
        self
    }

    /// Add a flapping link.
    pub fn with_flap(mut self, flap: LinkFlap) -> Self {
        self.flaps.push(flap);
        self
    }

    /// Add a hard blackhole window.
    pub fn with_blackhole(mut self, hole: Blackhole) -> Self {
        self.blackholes.push(hole);
        self
    }

    /// Enable the response-size model with the given link-level cap.
    pub fn with_udp_payload_limit(mut self, limit: u16) -> Self {
        self.udp_payload_limit = Some(limit);
        self
    }

    /// True when the plan can never change any exchange.
    pub fn is_noop(&self) -> bool {
        self.loss <= 0.0
            && self.corrupt <= 0.0
            && self.bursts.is_empty()
            && self.spikes.is_empty()
            && self.flaps.is_empty()
            && self.blackholes.is_empty()
            && self.udp_payload_limit.is_none()
    }

    /// Scheduled unreachability: the fault kind tag (`"flap"` or
    /// `"blackhole"`) when `dst` is dark `at_ms` after plan attachment.
    pub fn unreachable_at(&self, dst: IpAddr, at_ms: u64) -> Option<&'static str> {
        for hole in &self.blackholes {
            if hole.target.matches(dst) && (hole.start_ms..hole.end_ms).contains(&at_ms) {
                return Some("blackhole");
            }
        }
        for flap in &self.flaps {
            if flap.target.matches(dst)
                && flap.period_ms > 0
                && at_ms % flap.period_ms < flap.down_ms
            {
                return Some("flap");
            }
        }
        None
    }

    /// Probabilistic loss: the fault kind tag (`"loss"` or `"burst"`)
    /// when this exchange is to be dropped.
    pub fn lose_at(&self, dst: IpAddr, at_ms: u64, query: &Message) -> Option<&'static str> {
        if self.loss > 0.0 && self.decide(1, dst, query) < self.loss {
            return Some("loss");
        }
        for burst in &self.bursts {
            if (burst.start_ms..burst.end_ms).contains(&at_ms)
                && self.decide(2, dst, query) < burst.rate
            {
                return Some("burst");
            }
        }
        None
    }

    /// Should this delivered reply come back garbled (FORMERR)?
    pub fn corrupt_at(&self, dst: IpAddr, query: &Message) -> bool {
        self.corrupt > 0.0 && self.decide(3, dst, query) < self.corrupt
    }

    /// Total extra latency scheduled `at_ms` after plan attachment.
    pub fn spike_extra_at(&self, at_ms: u64) -> u64 {
        self.spikes
            .iter()
            .filter(|s| (s.start_ms..s.end_ms).contains(&at_ms))
            .map(|s| s.extra_ms)
            .sum()
    }

    /// The effective UDP payload limit negotiated for `query`, when the
    /// response-size model is on: the link cap meets the client's EDNS
    /// advertisement, floored at the classic 512-byte minimum.
    pub fn negotiated_limit(&self, query: &Message) -> Option<u16> {
        self.udp_payload_limit
            .map(|cap| cap.max(512).min(query.advertised_payload_size()))
    }

    /// One deterministic uniform draw in `[0, 1)` per (kind, flow).
    fn decide(&self, salt: u64, dst: IpAddr, query: &Message) -> f64 {
        let mut h: u64 = 0xcbf29ce484222325 ^ self.seed;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(&salt.to_be_bytes());
        match dst {
            IpAddr::V4(a) => mix(&a.octets()),
            IpAddr::V6(a) => mix(&a.octets()),
        }
        mix(&query.id.to_be_bytes());
        if let Some(q) = query.first_question() {
            mix(&q.name.to_wire());
        }
        h as f64 / u64::MAX as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::{Name, RrType};

    fn q(id: u16) -> Message {
        Message::query(id, Name::parse("example.com").unwrap(), RrType::A)
    }

    fn ip() -> IpAddr {
        "93.184.216.34".parse().unwrap()
    }

    #[test]
    fn empty_plan_is_noop() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_noop());
        assert_eq!(plan.unreachable_at(ip(), 0), None);
        assert_eq!(plan.lose_at(ip(), 0, &q(1)), None);
        assert!(!plan.corrupt_at(ip(), &q(1)));
        assert_eq!(plan.spike_extra_at(0), 0);
        assert_eq!(plan.negotiated_limit(&q(1)), None);
        assert!(FaultPlan::intensity(9, 0.0).is_noop());
    }

    #[test]
    fn decisions_are_deterministic_and_calibrated() {
        let plan = FaultPlan::new(42).with_loss(0.3);
        let first: Vec<bool> = (0..500)
            .map(|i| plan.lose_at(ip(), 0, &q(i)).is_some())
            .collect();
        let again: Vec<bool> = (0..500)
            .map(|i| plan.lose_at(ip(), 0, &q(i)).is_some())
            .collect();
        assert_eq!(first, again);
        let lost = first.iter().filter(|&&l| l).count();
        assert!(
            (80..=220).contains(&lost),
            "~30% loss expected, got {lost}/500"
        );

        // Loss and corruption draws are independent (different salts).
        let both = FaultPlan::new(42).with_loss(0.3).with_corruption(0.3);
        let disagree = (0..500)
            .filter(|&i| both.lose_at(ip(), 0, &q(i)).is_some() != both.corrupt_at(ip(), &q(i)))
            .count();
        assert!(disagree > 100, "independent draws must diverge: {disagree}");
    }

    #[test]
    fn windows_schedule_on_the_clock() {
        let plan = FaultPlan::new(7)
            .with_burst(LossBurst {
                start_ms: 1_000,
                end_ms: 2_000,
                rate: 1.0,
            })
            .with_spike(LatencySpike {
                start_ms: 500,
                end_ms: 600,
                extra_ms: 150,
            })
            .with_blackhole(Blackhole {
                target: FaultTarget::Addr(ip()),
                start_ms: 100,
                end_ms: 200,
            })
            .with_flap(LinkFlap {
                target: FaultTarget::All,
                period_ms: 10_000,
                down_ms: 2_500,
            });

        assert_eq!(plan.lose_at(ip(), 999, &q(1)), None);
        assert_eq!(plan.lose_at(ip(), 1_500, &q(1)), Some("burst"));
        assert_eq!(plan.spike_extra_at(550), 150);
        assert_eq!(plan.spike_extra_at(600), 0);
        assert_eq!(plan.unreachable_at(ip(), 150), Some("blackhole"));
        let other: IpAddr = "198.51.100.7".parse().unwrap();
        // The flap covers everything for the first quarter of each cycle.
        assert_eq!(plan.unreachable_at(other, 12_000), Some("flap"));
        assert_eq!(plan.unreachable_at(other, 5_000), None);
    }

    #[test]
    fn negotiated_limit_meets_client_advertisement() {
        let plan = FaultPlan::new(1).with_udp_payload_limit(1400);
        // Client advertises 1232 (the crate default) — the smaller wins.
        assert_eq!(plan.negotiated_limit(&q(1)), Some(1232));
        let tight = FaultPlan::new(1).with_udp_payload_limit(100);
        // Link caps below the RFC minimum are floored at 512.
        assert_eq!(tight.negotiated_limit(&q(1)), Some(512));
    }
}
