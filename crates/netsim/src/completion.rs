//! A deterministic completion-event queue for in-flight exchanges.
//!
//! The event-driven resolver core (see `docs/CONCURRENCY.md`) separates
//! *sending* a query from *observing* its outcome: [`crate::Network::send`]
//! returns an [`crate::transport::InFlight`] token carrying the absolute
//! virtual-clock deadline at which the outcome becomes observable, and a
//! scheduler parks the token here until that deadline is the earliest
//! pending one. The queue is the single source of event ordering, so its
//! ordering rules *are* the simulation's determinism rules:
//!
//! 1. events pop in ascending deadline order;
//! 2. events with equal deadlines pop in insertion (FIFO) order.
//!
//! Rule 2 matters more than it looks: the scan worlds run with zero
//! latency, so *every* completion shares one deadline and insertion order
//! alone decides the interleaving. Because insertion order is itself a
//! deterministic function of task spawn order, a scan at any in-flight
//! window is bit-reproducible (and `ede-scan` asserts it is).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

struct Entry<T> {
    deadline_ms: u64,
    seq: u64,
    item: T,
}

// BinaryHeap is a max-heap: invert the comparison so the earliest
// (deadline, seq) pair is the heap root.
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.deadline_ms, other.seq).cmp(&(self.deadline_ms, self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline_ms == other.deadline_ms && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

/// A priority queue of pending completions, ordered by
/// `(deadline_ms, insertion order)`.
///
/// `T` is whatever the scheduler needs to resume work — `ede-resolver`'s
/// task pool stores a task id plus the in-flight token. The queue itself
/// never touches the clock; the consumer advances virtual time to each
/// popped deadline (see [`crate::SimClock::advance_to_millis`]).
///
/// ```
/// use ede_netsim::CompletionQueue;
///
/// let mut q = CompletionQueue::new();
/// q.push(200, "slow");
/// q.push(100, "fast");
/// q.push(100, "fast-but-later");
/// assert_eq!(q.pop(), Some((100, "fast")));
/// assert_eq!(q.pop(), Some((100, "fast-but-later")));
/// assert_eq!(q.pop(), Some((200, "slow")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct CompletionQueue<T> {
    /// Out-of-order arrivals (a push whose deadline precedes an already
    /// pending one). Rare outside fault-heavy worlds.
    heap: BinaryHeap<Entry<T>>,
    /// Monotone arrivals: entries pushed with a deadline `>=` every
    /// deadline already pending, kept in push (= pop) order. In the
    /// zero-latency scan worlds the virtual clock only moves forward
    /// between sends, so *every* push lands here and pop is a plain
    /// `pop_front` — no O(log n) sift moving the large entries around.
    lane: VecDeque<Entry<T>>,
    next_seq: u64,
}

impl<T> CompletionQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        CompletionQueue {
            heap: BinaryHeap::new(),
            lane: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// Schedule `item` to become observable at `deadline_ms` (absolute
    /// virtual-clock milliseconds).
    pub fn push(&mut self, deadline_ms: u64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            deadline_ms,
            seq,
            item,
        };
        // The lane accepts any deadline at or past its newest entry:
        // such an entry pops after everything already queued in the
        // lane, and — because its seq is the largest so far — after any
        // heap entry sharing its deadline, so FIFO order is preserved
        // exactly. Everything else (a deadline *before* the lane tail)
        // goes through the heap.
        match self.lane.back() {
            Some(back) if deadline_ms < back.deadline_ms => self.heap.push(entry),
            _ => self.lane.push_back(entry),
        }
    }

    /// Remove and return the earliest pending completion as
    /// `(deadline_ms, item)`, or `None` when nothing is pending.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        // `Entry: Ord` is inverted (min-first), so `earlier` means
        // `cmp == Greater` under the raw ordering — compare keys
        // directly instead to keep this readable.
        let lane_first = match (self.lane.front(), self.heap.peek()) {
            (Some(l), Some(h)) => (l.deadline_ms, l.seq) <= (h.deadline_ms, h.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        let e = if lane_first {
            self.lane.pop_front()
        } else {
            self.heap.pop()
        }?;
        Some((e.deadline_ms, e.item))
    }

    /// The earliest pending deadline, if any.
    pub fn peek_deadline(&self) -> Option<u64> {
        match (self.lane.front(), self.heap.peek()) {
            (Some(l), Some(h)) => Some(l.deadline_ms.min(h.deadline_ms)),
            (Some(l), None) => Some(l.deadline_ms),
            (None, Some(h)) => Some(h.deadline_ms),
            (None, None) => None,
        }
    }

    /// Number of pending completions.
    pub fn len(&self) -> usize {
        self.heap.len() + self.lane.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.lane.is_empty()
    }
}

impl<T> std::fmt::Debug for CompletionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("len", &self.heap.len())
            .field("next_deadline_ms", &self.peek_deadline())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order() {
        let mut q = CompletionQueue::new();
        q.push(30, 'c');
        q.push(10, 'a');
        q.push(20, 'b');
        assert_eq!(q.peek_deadline(), Some(10));
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_deadlines_pop_fifo() {
        // The zero-latency scan case: every deadline identical, order
        // must be exactly insertion order.
        let mut q = CompletionQueue::new();
        for i in 0..100u32 {
            q.push(42, i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    /// Exhaustive order check across the lane/heap split: random-ish
    /// deadline patterns must pop in exact `(deadline, seq)` order, the
    /// same order a single sorted structure would produce.
    #[test]
    fn lane_and_heap_merge_preserves_total_order() {
        // A deliberately nasty pattern: monotone runs (lane), dips
        // below the lane tail (heap), pops draining the lane so late
        // small deadlines re-enter an empty lane ahead of pending heap
        // entries.
        let pattern: &[u64] = &[10, 10, 5, 7, 20, 3, 20, 1, 15, 15, 2, 30, 8];
        let mut q = CompletionQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for (seq, &d) in pattern.iter().enumerate() {
            q.push(d, seq as u64);
            expect.push((d, seq as u64));
        }
        // Interleave: pop half, push a second wave, pop the rest.
        expect.sort_unstable();
        let mut got: Vec<(u64, u64)> = Vec::new();
        for _ in 0..6 {
            let (d, s) = q.pop().unwrap();
            got.push((d, s));
        }
        for (i, &d) in [4u64, 40, 6].iter().enumerate() {
            let seq = (pattern.len() + i) as u64;
            q.push(d, seq);
        }
        let mut expect2: Vec<(u64, u64)> = expect.split_off(6);
        expect2.push((4, 13));
        expect2.push((40, 14));
        expect2.push((6, 15));
        expect2.sort_unstable();
        while let Some((d, s)) = q.pop() {
            got.push((d, s));
        }
        let mut full = expect;
        full.extend(expect2);
        assert_eq!(got, full);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_holds_under_interleaved_push_pop() {
        let mut q = CompletionQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(5, "c");
        q.push(4, "early");
        assert_eq!(q.pop(), Some((4, "early")));
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
    }
}
