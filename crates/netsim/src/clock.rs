//! The shared virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The simulation epoch: 2023-05-15 00:00:00 UTC (the paper's measurement
/// month), in seconds. Matches `ede_zone::signer::SIM_NOW`.
pub const SIM_EPOCH_SECS: u64 = 1_684_108_800;

/// A cloneable handle to the simulation clock (milliseconds).
///
/// The clock never reads the host's time; it only moves when the
/// transport charges latency or a timeout. Cloned handles share state, so
/// every component of one simulation sees one timeline.
#[derive(Clone, Debug)]
pub struct SimClock {
    millis: Arc<AtomicU64>,
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SimClock {
    /// A clock starting at the simulation epoch.
    pub fn new() -> Self {
        SimClock {
            millis: Arc::new(AtomicU64::new(SIM_EPOCH_SECS * 1000)),
        }
    }

    /// Current simulated time in milliseconds since the Unix epoch.
    pub fn now_millis(&self) -> u64 {
        self.millis.load(Ordering::Relaxed)
    }

    /// Current simulated time in whole seconds (the resolution DNS TTLs
    /// and RRSIG windows use).
    pub fn now_secs(&self) -> u32 {
        (self.now_millis() / 1000) as u32
    }

    /// Advance the clock by `ms` milliseconds.
    pub fn advance_millis(&self, ms: u64) {
        self.millis.fetch_add(ms, Ordering::Relaxed);
    }

    /// Advance the clock by whole seconds (used by cache-expiry tests and
    /// the serve-stale scenarios).
    pub fn advance_secs(&self, secs: u64) {
        self.advance_millis(secs * 1000);
    }

    /// Advance the clock *to* `deadline_ms`, if that instant is in the
    /// future; a deadline already in the past leaves the clock alone.
    ///
    /// This is the event-driven counterpart of [`advance_millis`]: when
    /// many exchanges are in flight at once, time moves to each
    /// completion's absolute deadline instead of accumulating per-query
    /// latencies, so overlapping exchanges overlap in virtual time too.
    /// Returns the clock value after the call.
    ///
    /// [`advance_millis`]: SimClock::advance_millis
    pub fn advance_to_millis(&self, deadline_ms: u64) -> u64 {
        self.millis
            .fetch_max(deadline_ms, Ordering::Relaxed)
            .max(deadline_ms)
    }
}

impl ede_trace::TraceClock for SimClock {
    fn trace_now_millis(&self) -> u64 {
        self.now_millis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_sim_epoch() {
        let c = SimClock::new();
        assert_eq!(c.now_secs() as u64, SIM_EPOCH_SECS);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_secs(90);
        assert_eq!(b.now_secs() as u64, SIM_EPOCH_SECS + 90);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::new();
        let start = c.now_millis();
        assert_eq!(c.advance_to_millis(start + 50), start + 50);
        assert_eq!(c.now_millis(), start + 50);
        // A deadline in the past does not rewind.
        assert_eq!(c.advance_to_millis(start + 10), start + 50);
        assert_eq!(c.now_millis(), start + 50);
        // Advancing to "now" is a no-op.
        assert_eq!(c.advance_to_millis(start + 50), start + 50);
        assert_eq!(c.now_millis(), start + 50);
    }

    #[test]
    fn millisecond_resolution() {
        let c = SimClock::new();
        c.advance_millis(999);
        assert_eq!(c.now_secs() as u64, SIM_EPOCH_SECS);
        c.advance_millis(1);
        assert_eq!(c.now_secs() as u64, SIM_EPOCH_SECS + 1);
    }
}
