//! The paper's Table 4, verbatim: EDE codes returned by each of the
//! seven systems for each of the 63 subdomains.
//!
//! The column order matches the paper: BIND 9.19.9, Unbound 1.16.2,
//! PowerDNS 4.8.2, Knot 5.6.0, Cloudflare DNS, Quad9, OpenDNS. An empty
//! list is the paper's "None".

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedRow {
    /// Subdomain label.
    pub label: &'static str,
    /// Expected codes per vendor, Table 4 column order.
    pub codes: [&'static [u16]; 7],
}

macro_rules! row {
    ($label:literal, $($col:expr),* $(,)?) => {
        ExpectedRow { label: $label, codes: [$(&$col),*] }
    };
}

/// The full matrix (rows 1–63 of Table 4; the glue groups 40–57 are
/// expanded to one row per subdomain).
pub fn table4() -> Vec<ExpectedRow> {
    const N: [u16; 0] = [];
    let mut rows = vec![
        row!("valid", N, N, N, N, N, N, N),
        row!("no-ds", N, N, N, N, N, N, N),
        row!("ds-bad-tag", N, [9], [9], [6], [9], [9], [6]),
        row!("ds-bad-key-algo", N, [9], [9], [6], [9], [9], [6]),
        row!("ds-unassigned-key-algo", N, N, N, [0], [9], N, [6]),
        row!("ds-reserved-key-algo", N, N, N, [0], [1], N, [6]),
        row!("ds-unassigned-digest-algo", N, N, N, [0], [2], N, N),
        row!("ds-bogus-digest-value", N, [9], [9], [6], [6], [9], [6]),
        row!("rrsig-exp-all", N, [7], [7], [7], [7], [7], [6]),
        row!("rrsig-exp-a", N, [6], [7], N, [7], [6], [7]),
        row!("rrsig-not-yet-all", N, [9], [8], [8], [8], [9], [6]),
        row!("rrsig-not-yet-a", N, [6], [8], N, [8], [8], [8]),
        row!("rrsig-no-all", N, [10], [10], [10], [10], [9], [6]),
        row!("rrsig-no-a", N, [10], [10], [10], [10], [10], N),
        row!("rrsig-exp-before-all", N, [9], [7], [7], [10], [9], [6]),
        row!("rrsig-exp-before-a", N, [6], [7], N, [7], [7], [7]),
        row!("nsec3-missing", N, [12], N, [12], [6], N, [12]),
        row!("bad-nsec3-hash", N, [6], N, [6], [6], [6], [12]),
        row!("bad-nsec3-next", N, [6], N, [6], [6], [6], [6]),
        row!("bad-nsec3-rrsig", N, [6], N, [6], [6], N, [6]),
        row!("nsec3-rrsig-missing", N, [12], N, [10], [6], [9], [12]),
        row!("nsec3param-missing", N, [10], [10], [10], [10], [9], [6]),
        row!("bad-nsec3param-salt", N, [12], N, [12], [6], [9], [12]),
        row!("no-nsec3param-nsec3", N, [10], [10], [10], [10], [10], [6]),
        row!("nsec3-iter-200", N, N, N, N, N, N, N),
        row!("no-zsk", N, [9], [6], [6], [6], [9], [6]),
        row!("bad-zsk", N, [9], [6], [6], [6], [6], [6]),
        row!("no-ksk", N, [9], [9], [6], [9], [9], [6]),
        row!("no-rrsig-ksk", N, [10], [9], [6], [10], [9], [6]),
        row!("bad-rrsig-ksk", N, [9], [6], [6], [6], [6], [6]),
        row!("bad-ksk", N, [9], [9], [6], [9], [9], [6]),
        row!("no-rrsig-dnskey", N, [10], [10], [10], [10], [9], [6]),
        row!("bad-rrsig-dnskey", N, [9], [6], [6], [6], [9], [6]),
        row!("no-dnskey-256", N, [9], [6], [6], [6], [9], [6]),
        row!("no-dnskey-257", N, [9], [9], [6], [9], [9], [6]),
        row!("no-dnskey-256-257", N, [9], [10], [10], [9], [10], [6]),
        row!("bad-zsk-algo", N, [9], [6], [6], [6], [6], [6]),
        row!("unassigned-zsk-algo", N, [9], [6], [6], [6], [9], [6]),
        row!("reserved-zsk-algo", N, [9], [6], [6], [6], [6], [6]),
    ];
    // Rows 40–57: the bad-glue groups — Cloudflare answers 22, everyone
    // else stays silent.
    for label in [
        "v6-mapped",
        "v6-multicast",
        "v6-unspecified",
        "v4-hex",
        "v6-unique-local",
        "v6-doc",
        "v6-link-local",
        "v6-localhost",
        "v6-mapped-dep",
        "v6-nat64",
        "v4-private-10",
        "v4-doc",
        "v4-private-172",
        "v4-loopback",
        "v4-private-192",
        "v4-reserved",
        "v4-this-host",
        "v4-link-local",
    ] {
        rows.push(ExpectedRow {
            label,
            codes: [&N, &N, &N, &N, &[22], &N, &N],
        });
    }
    rows.extend([
        row!("unsigned", N, N, N, N, N, N, N),
        row!("ed448", N, N, N, N, [1], N, N),
        row!("rsamd5", N, N, N, [0], [1], N, N),
        row!("dsa", N, N, N, [0], [1], N, N),
        row!("allow-query-none", N, N, N, N, [9, 22, 23], N, [18]),
        row!("allow-query-localhost", N, N, N, N, [9, 22, 23], N, [18]),
    ]);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_specs;

    #[test]
    fn matrix_covers_all_63_in_spec_order() {
        let rows = table4();
        let specs = all_specs();
        assert_eq!(rows.len(), 63);
        for (row, spec) in rows.iter().zip(&specs) {
            assert_eq!(row.label, spec.label);
        }
    }

    #[test]
    fn twelve_unique_codes_appear() {
        // §3.3: "Our test cases triggered 12 unique INFO-CODEs".
        let mut codes: Vec<u16> = table4()
            .iter()
            .flat_map(|r| r.codes.iter().flat_map(|c| c.iter().copied()))
            .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes, vec![0, 1, 2, 6, 7, 8, 9, 10, 12, 18, 22, 23]);
        assert_eq!(codes.len(), 12);
    }
}
