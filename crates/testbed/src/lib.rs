//! The `extended-dns-errors.com` testbed (paper §3, Tables 2–4).
//!
//! * [`domains`] — the 63 subdomain specifications: misconfiguration,
//!   signing parameters, glue kind, server behavior, and the query that
//!   exercises the case.
//! * [`build`] — materializes the whole simulated internet: a signed
//!   root zone, a signed `com` zone, the signed
//!   `extended-dns-errors.com` parent with all 63 delegations, and one
//!   authoritative server per subdomain.
//! * [`expectations`] — the paper's Table 4, verbatim: the EDE codes
//!   each of the seven systems returned per subdomain.
//! * [`agreement`] — the agreement analysis behind the headline
//!   "94 % of test cases are handled inconsistently".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod build;
pub mod domains;
pub mod expectations;

pub use build::Testbed;
pub use domains::{all_specs, DomainSpec, GlueKind, QueryKind, ServerMode};
