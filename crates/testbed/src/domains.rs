//! The 63 subdomain specifications (paper Tables 2 and 3).

use ede_wire::SecAlg;
use ede_zone::{Misconfig, TypeSel};

/// How the testbed queries a subdomain.
///
/// Most cases are exercised by an A query for the subdomain apex. The
/// NSEC3 cases need a *negative* answer to make denial proofs matter:
/// the paper (§3.3) notes that `bad-nsec3-next`/`bad-nsec3-rrsig`
/// were triggered "when requesting non-existing subdomains", and the two
/// NSEC3PARAM cases are driven through a NODATA answer (the zones carry
/// no apex A record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A query for `<sub>.<base>` answered positively.
    Positive,
    /// A query for `test.<sub>.<base>` → NXDOMAIN.
    NxdomainChild,
    /// A query for `<sub>.<base>` where the apex has no A → NODATA.
    NodataApex,
}

/// What glue the parent zone publishes for the subdomain's nameserver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlueKind {
    /// Correct glue pointing at the child's (routable) server.
    Routable,
    /// An IPv4 special-purpose address (group 7).
    SpecialV4(&'static str),
    /// An IPv6 special-purpose address (group 6).
    SpecialV6(&'static str),
}

/// The child nameserver's behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Answers normally.
    Normal,
    /// REFUSED to everyone (`allow-query-none`).
    RefuseAll,
    /// REFUSED unless the query comes from localhost
    /// (`allow-query-localhost`).
    LocalhostOnly,
}

/// One subdomain of the testbed.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// The subdomain label (Table 2).
    pub label: &'static str,
    /// Misconfiguration group 1–8 (Table 2).
    pub group: u8,
    /// Whether the zone is DNSSEC-signed at all.
    pub signed: bool,
    /// Signing algorithm.
    pub algorithm: SecAlg,
    /// NSEC3 iteration count used at signing time.
    pub nsec3_iterations: u16,
    /// The post-signing mutation, if any.
    pub misconfig: Option<Misconfig>,
    /// Parent-zone glue for the child's nameserver.
    pub glue: GlueKind,
    /// Child server behavior.
    pub server: ServerMode,
    /// Whether the zone carries an apex A record.
    pub apex_a: bool,
    /// How the testbed queries this case.
    pub query: QueryKind,
}

impl DomainSpec {
    fn new(label: &'static str, group: u8) -> Self {
        DomainSpec {
            label,
            group,
            signed: true,
            algorithm: SecAlg::RSASHA256,
            nsec3_iterations: 0,
            misconfig: None,
            glue: GlueKind::Routable,
            server: ServerMode::Normal,
            apex_a: true,
            query: QueryKind::Positive,
        }
    }

    fn with_misconfig(mut self, m: Misconfig) -> Self {
        self.misconfig = Some(m);
        self
    }

    fn unsigned(mut self) -> Self {
        self.signed = false;
        self
    }

    fn with_algorithm(mut self, alg: SecAlg) -> Self {
        self.algorithm = alg;
        self
    }

    fn nxdomain_query(mut self) -> Self {
        self.query = QueryKind::NxdomainChild;
        self
    }

    fn nodata_query(mut self) -> Self {
        self.apex_a = false;
        self.query = QueryKind::NodataApex;
        self
    }

    fn v4_glue(mut self, addr: &'static str) -> Self {
        self.glue = GlueKind::SpecialV4(addr);
        self.signed = false;
        self
    }

    fn v6_glue(mut self, addr: &'static str) -> Self {
        self.glue = GlueKind::SpecialV6(addr);
        self.signed = false;
        self
    }

    fn server_mode(mut self, mode: ServerMode) -> Self {
        self.server = mode;
        self
    }
}

/// All 63 subdomains in Table 2 order.
pub fn all_specs() -> Vec<DomainSpec> {
    use Misconfig as M;
    vec![
        // Group 1: control.
        DomainSpec::new("valid", 1),
        // Group 2: DS misconfigurations.
        DomainSpec::new("no-ds", 2).with_misconfig(M::NoDs),
        DomainSpec::new("ds-bad-tag", 2).with_misconfig(M::DsBadTag),
        DomainSpec::new("ds-bad-key-algo", 2).with_misconfig(M::DsBadKeyAlgo),
        DomainSpec::new("ds-unassigned-key-algo", 2).with_misconfig(M::DsUnassignedKeyAlgo),
        DomainSpec::new("ds-reserved-key-algo", 2).with_misconfig(M::DsReservedKeyAlgo),
        DomainSpec::new("ds-unassigned-digest-algo", 2).with_misconfig(M::DsUnassignedDigestAlgo),
        DomainSpec::new("ds-bogus-digest-value", 2).with_misconfig(M::DsBogusDigestValue),
        // Group 3: RRSIG misconfigurations.
        DomainSpec::new("rrsig-exp-all", 3).with_misconfig(M::RrsigExpired(TypeSel::All)),
        DomainSpec::new("rrsig-exp-a", 3).with_misconfig(M::RrsigExpired(TypeSel::OnlyApexA)),
        DomainSpec::new("rrsig-not-yet-all", 3).with_misconfig(M::RrsigNotYetValid(TypeSel::All)),
        DomainSpec::new("rrsig-not-yet-a", 3)
            .with_misconfig(M::RrsigNotYetValid(TypeSel::OnlyApexA)),
        DomainSpec::new("rrsig-no-all", 3).with_misconfig(M::RrsigMissing(TypeSel::All)),
        DomainSpec::new("rrsig-no-a", 3).with_misconfig(M::RrsigMissing(TypeSel::OnlyApexA)),
        DomainSpec::new("rrsig-exp-before-all", 3)
            .with_misconfig(M::RrsigExpiredBeforeValid(TypeSel::All)),
        DomainSpec::new("rrsig-exp-before-a", 3)
            .with_misconfig(M::RrsigExpiredBeforeValid(TypeSel::OnlyApexA)),
        // Group 4: NSEC3 misconfigurations.
        DomainSpec::new("nsec3-missing", 4)
            .with_misconfig(M::Nsec3Missing)
            .nxdomain_query(),
        DomainSpec::new("bad-nsec3-hash", 4)
            .with_misconfig(M::BadNsec3Hash)
            .nxdomain_query(),
        DomainSpec::new("bad-nsec3-next", 4)
            .with_misconfig(M::BadNsec3Next)
            .nxdomain_query(),
        DomainSpec::new("bad-nsec3-rrsig", 4)
            .with_misconfig(M::BadNsec3Rrsig)
            .nxdomain_query(),
        DomainSpec::new("nsec3-rrsig-missing", 4)
            .with_misconfig(M::Nsec3RrsigMissing)
            .nxdomain_query(),
        DomainSpec::new("nsec3param-missing", 4)
            .with_misconfig(M::Nsec3ParamMissing)
            .nodata_query(),
        DomainSpec::new("bad-nsec3param-salt", 4)
            .with_misconfig(M::BadNsec3ParamSalt)
            .nodata_query(),
        DomainSpec::new("no-nsec3param-nsec3", 4)
            .with_misconfig(M::NoNsec3ParamNsec3)
            .nxdomain_query(),
        {
            let mut s = DomainSpec::new("nsec3-iter-200", 4);
            s.nsec3_iterations = 200;
            s
        },
        // Group 5: DNSKEY misconfigurations.
        DomainSpec::new("no-zsk", 5).with_misconfig(M::NoZsk),
        DomainSpec::new("bad-zsk", 5).with_misconfig(M::BadZsk),
        DomainSpec::new("no-ksk", 5).with_misconfig(M::NoKsk),
        DomainSpec::new("no-rrsig-ksk", 5).with_misconfig(M::NoRrsigKsk),
        DomainSpec::new("bad-rrsig-ksk", 5).with_misconfig(M::BadRrsigKsk),
        DomainSpec::new("bad-ksk", 5).with_misconfig(M::BadKsk),
        DomainSpec::new("no-rrsig-dnskey", 5).with_misconfig(M::NoRrsigDnskey),
        DomainSpec::new("bad-rrsig-dnskey", 5).with_misconfig(M::BadRrsigDnskey),
        DomainSpec::new("no-dnskey-256", 5).with_misconfig(M::NoZoneKeyBitZsk),
        DomainSpec::new("no-dnskey-257", 5).with_misconfig(M::NoZoneKeyBitKsk),
        DomainSpec::new("no-dnskey-256-257", 5).with_misconfig(M::NoZoneKeyBitBoth),
        DomainSpec::new("bad-zsk-algo", 5).with_misconfig(M::BadZskAlgo),
        DomainSpec::new("unassigned-zsk-algo", 5).with_misconfig(M::UnassignedZskAlgo),
        DomainSpec::new("reserved-zsk-algo", 5).with_misconfig(M::ReservedZskAlgo),
        // Group 6: invalid AAAA glue (Table 3 addresses).
        DomainSpec::new("v6-mapped", 6).v6_glue("::ffff:192.0.2.1"),
        DomainSpec::new("v6-multicast", 6).v6_glue("ff02::1"),
        DomainSpec::new("v6-unspecified", 6).v6_glue("::"),
        DomainSpec::new("v4-hex", 6).v6_glue("::c000:201"),
        DomainSpec::new("v6-unique-local", 6).v6_glue("fd00::1234"),
        DomainSpec::new("v6-doc", 6).v6_glue("2001:db8::77"),
        DomainSpec::new("v6-link-local", 6).v6_glue("fe80::1"),
        DomainSpec::new("v6-localhost", 6).v6_glue("::1"),
        DomainSpec::new("v6-mapped-dep", 6).v6_glue("::c000:209"),
        DomainSpec::new("v6-nat64", 6).v6_glue("64:ff9b::c000:201"),
        // Group 7: invalid A glue.
        DomainSpec::new("v4-private-10", 7).v4_glue("10.11.12.13"),
        DomainSpec::new("v4-doc", 7).v4_glue("192.0.2.55"),
        DomainSpec::new("v4-private-172", 7).v4_glue("172.16.9.9"),
        DomainSpec::new("v4-loopback", 7).v4_glue("127.0.0.53"),
        DomainSpec::new("v4-private-192", 7).v4_glue("192.168.1.1"),
        DomainSpec::new("v4-reserved", 7).v4_glue("240.1.2.3"),
        DomainSpec::new("v4-this-host", 7).v4_glue("0.0.0.0"),
        DomainSpec::new("v4-link-local", 7).v4_glue("169.254.7.7"),
        // Group 8: corner cases.
        DomainSpec::new("unsigned", 8).unsigned(),
        DomainSpec::new("ed448", 8).with_algorithm(SecAlg::ED448),
        DomainSpec::new("rsamd5", 8).with_algorithm(SecAlg::RSAMD5),
        DomainSpec::new("dsa", 8).with_algorithm(SecAlg::DSA),
        DomainSpec::new("allow-query-none", 8).server_mode(ServerMode::RefuseAll),
        DomainSpec::new("allow-query-localhost", 8).server_mode(ServerMode::LocalhostOnly),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_63_subdomains() {
        assert_eq!(all_specs().len(), 63);
    }

    #[test]
    fn group_sizes_match_table2() {
        let specs = all_specs();
        let count = |g: u8| specs.iter().filter(|s| s.group == g).count();
        assert_eq!(count(1), 1);
        assert_eq!(count(2), 7);
        assert_eq!(count(3), 8);
        assert_eq!(count(4), 9);
        assert_eq!(count(5), 14);
        assert_eq!(count(6), 10);
        assert_eq!(count(7), 8);
        assert_eq!(count(8), 6);
    }

    #[test]
    fn labels_are_unique() {
        let specs = all_specs();
        let mut labels: Vec<&str> = specs.iter().map(|s| s.label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 63);
    }

    #[test]
    fn glue_groups_are_unsigned() {
        for s in all_specs() {
            if s.group == 6 || s.group == 7 {
                assert!(!s.signed, "{} must be unsigned", s.label);
                assert!(!matches!(s.glue, GlueKind::Routable));
            }
        }
    }
}
