//! Agreement analysis across the seven systems (paper §3.3).

/// Agreement statistics over a 63 × 7 matrix of code lists.
#[derive(Debug, Clone, PartialEq)]
pub struct Agreement {
    /// Number of subdomains where all seven systems returned the same
    /// codes.
    pub consistent: usize,
    /// Total subdomains considered.
    pub total: usize,
    /// The labels of the consistent cases.
    pub consistent_labels: Vec<String>,
}

impl Agreement {
    /// Fraction of cases handled inconsistently — the paper's 94 %.
    pub fn inconsistency_ratio(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.total - self.consistent) as f64 / self.total as f64
    }
}

/// Compute agreement over rows of (label, per-vendor code lists).
pub fn analyze(rows: &[(String, Vec<Vec<u16>>)]) -> Agreement {
    let mut consistent = 0;
    let mut consistent_labels = Vec::new();
    for (label, cols) in rows {
        let all_same = cols.windows(2).all(|w| w[0] == w[1]);
        if all_same {
            consistent += 1;
            consistent_labels.push(label.clone());
        }
    }
    Agreement {
        consistent,
        total: rows.len(),
        consistent_labels,
    }
}

/// Count the distinct INFO-CODEs appearing anywhere in the matrix.
pub fn unique_codes(rows: &[(String, Vec<Vec<u16>>)]) -> Vec<u16> {
    let mut codes: Vec<u16> = rows
        .iter()
        .flat_map(|(_, cols)| cols.iter().flatten().copied())
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectations::table4;

    fn expectation_rows() -> Vec<(String, Vec<Vec<u16>>)> {
        table4()
            .into_iter()
            .map(|r| {
                (
                    r.label.to_string(),
                    r.codes.iter().map(|c| c.to_vec()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn paper_numbers_from_expectation_matrix() {
        // "Only 4 test cases out of 63 triggered the same results across
        // all the seven tested systems: no-ds, nsec3-iter-200, unsigned,
        // and valid."
        let agreement = analyze(&expectation_rows());
        assert_eq!(agreement.total, 63);
        assert_eq!(agreement.consistent, 4);
        assert_eq!(
            agreement.consistent_labels,
            vec!["valid", "no-ds", "nsec3-iter-200", "unsigned"]
        );
        // 59/63 = 93.65 % ≈ the paper's "94 % of the cases".
        let pct = agreement.inconsistency_ratio() * 100.0;
        assert!((93.0..95.0).contains(&pct), "{pct}");
    }

    #[test]
    fn twelve_unique_codes() {
        assert_eq!(unique_codes(&expectation_rows()).len(), 12);
    }
}
