//! Materialize the testbed: root zone, `com` zone, the
//! `extended-dns-errors.com` parent, 63 child zones, and their servers.

use crate::domains::{all_specs, DomainSpec, GlueKind, QueryKind, ServerMode};
use ede_authority::{Behavior, ZoneServer, ZoneStore};
use ede_netsim::{Network, NetworkBuilder, SimClock};
use ede_resolver::config::RootHint;
use ede_resolver::reporting::ReportingAgent;
use ede_resolver::{Resolver, ResolverConfig, Vendor, VendorProfile};
use ede_wire::rdata::Soa;
use ede_wire::{DigestAlg, Name, Rdata, Record};
use ede_zone::{signer, Denial, Nsec3Config, SignerConfig, Zone, ZoneKeys};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// Address of the simulated root server.
pub const ROOT_SERVER: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
/// Address of the simulated `com` server.
pub const COM_SERVER: Ipv4Addr = Ipv4Addr::new(192, 5, 6, 30);
/// Address of the `extended-dns-errors.com` parent server.
pub const PARENT_SERVER: Ipv4Addr = Ipv4Addr::new(185, 199, 108, 53);
/// Address of the RFC 9567 reporting agent's server.
pub const REPORT_AGENT_SERVER: Ipv4Addr = Ipv4Addr::new(185, 199, 108, 99);

/// The built testbed.
pub struct Testbed {
    /// The simulated internet, ready to be queried.
    pub net: Arc<Network>,
    /// `extended-dns-errors.com`.
    pub base: Name,
    /// The 63 specifications.
    pub specs: Vec<DomainSpec>,
    /// Resolver configuration (root hints + trust anchor) for this
    /// internet.
    pub resolver_config: ResolverConfig,
    /// The RFC 9567 reporting agent attached to the network (collects
    /// reports when a resolver is configured to send them).
    pub reporting_agent: Arc<ReportingAgent>,
    /// Every authoritative server registered on the network (root, com,
    /// parent, children) — kept so a tracer can be attached to all of
    /// them at once.
    pub zone_servers: Vec<Arc<ZoneServer>>,
}

impl Testbed {
    /// Build the complete infrastructure.
    pub fn build() -> Testbed {
        TestbedBuilder::default().build()
    }

    /// Attach a trace sink to the whole testbed: the network's transport
    /// (query/response/timeout events, stamped with the shared virtual
    /// clock) and every authoritative server (`AuthorityAnswer` events).
    /// Resolvers created from this testbed pick the sink up through the
    /// network automatically.
    pub fn attach_trace_sink(&self, sink: Arc<dyn ede_trace::TraceSink>) {
        self.net.set_trace_sink(sink);
        let tracer = self.net.tracer();
        for server in &self.zone_servers {
            server.set_tracer(tracer.clone());
        }
    }

    /// A fresh resolver with the given vendor profile attached to this
    /// testbed's network.
    pub fn resolver(&self, vendor: Vendor) -> Resolver {
        Resolver::new(
            Arc::clone(&self.net),
            VendorProfile::new(vendor),
            self.resolver_config.clone(),
        )
    }

    /// Like [`Testbed::resolver`], but with RFC 9567 error reporting
    /// toward this testbed's agent enabled.
    pub fn resolver_with_reporting(&self, vendor: Vendor) -> Resolver {
        let mut config = self.resolver_config.clone();
        config.error_reporting = Some((
            self.reporting_agent.agent().clone(),
            IpAddr::V4(REPORT_AGENT_SERVER),
        ));
        Resolver::new(Arc::clone(&self.net), VendorProfile::new(vendor), config)
    }

    /// The name the testbed queries for a given spec (see
    /// [`QueryKind`]).
    pub fn query_name(&self, spec: &DomainSpec) -> Name {
        let sub = self.base.child(spec.label).expect("valid label");
        match spec.query {
            QueryKind::Positive | QueryKind::NodataApex => sub,
            QueryKind::NxdomainChild => sub.child("test").expect("valid label"),
        }
    }

    /// Look up a spec by its label.
    pub fn spec(&self, label: &str) -> Option<&DomainSpec> {
        self.specs.iter().find(|s| s.label == label)
    }
}

#[derive(Default)]
struct TestbedBuilder {}

fn soa_for(apex: &Name) -> Rdata {
    Rdata::Soa(Soa {
        mname: apex.child("ns1").expect("valid"),
        rname: apex.child("hostmaster").expect("valid"),
        serial: 20230515,
        refresh: 7200,
        retry: 3600,
        expire: 1209600,
        minimum: 300,
    })
}

/// Create a zone skeleton: SOA, apex NS, in-zone nameserver A record.
fn skeleton(apex: &Name, ns_addr: Ipv4Addr) -> (Zone, Name) {
    let ns_name = apex.child("ns1").expect("valid label");
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(apex.clone(), 3600, soa_for(apex)));
    zone.add(Record::new(apex.clone(), 3600, Rdata::Ns(ns_name.clone())));
    zone.add_a(ns_name.clone(), ns_addr);
    (zone, ns_name)
}

/// The server address assigned to the `idx`-th subdomain.
pub fn child_server_addr(idx: usize) -> Ipv4Addr {
    Ipv4Addr::new(185, 199, 110 + (idx / 200) as u8, (idx % 200 + 1) as u8)
}

/// Materialize one testbed child zone exactly as the builder does:
/// skeleton, optional apex A, signing, and the spec's mutation. Returns
/// the zone plus the DS RDATA(s) the parent publishes for it. Used both
/// by the builder and by the zone-dump tooling.
pub fn materialize_child_zone(spec: &DomainSpec, base: &Name, idx: usize) -> (Zone, Vec<Rdata>) {
    let apex = base.child(spec.label).expect("valid label");
    let server_addr = child_server_addr(idx);
    let (mut zone, _ns_name) = skeleton(&apex, server_addr);
    if spec.apex_a {
        // The answer value is arbitrary; nothing ever connects to it.
        zone.add_a(
            apex.clone(),
            Ipv4Addr::new(203, 0, 113, (idx % 250 + 1) as u8),
        );
    }

    let mut ds_rdatas: Vec<Rdata> = Vec::new();
    if spec.signed {
        let keys = ZoneKeys::generate(&apex, spec.algorithm.0, 2048);
        let cfg = SignerConfig {
            algorithm: spec.algorithm,
            denial: Denial::Nsec3(Nsec3Config {
                iterations: spec.nsec3_iterations,
                salt: vec![0xab, 0xcd],
            }),
            ..Default::default()
        };
        signer::sign_zone(&mut zone, &keys, &cfg);
        match &spec.misconfig {
            Some(m) => {
                m.apply(&mut zone, &keys);
                ds_rdatas = m.parent_ds(&keys, &apex);
            }
            None => {
                ds_rdatas = vec![keys.ksk.ds_rdata(&apex, DigestAlg::SHA256)];
            }
        }
    }
    (zone, ds_rdatas)
}

impl TestbedBuilder {
    fn build(self) -> Testbed {
        let clock = SimClock::new();
        let mut net = NetworkBuilder::new();
        let specs = all_specs();

        let root = Name::root();
        let com = Name::parse("com").expect("valid");
        let base = Name::parse("extended-dns-errors.com").expect("valid");

        // --- Child zones --------------------------------------------------
        // Build children first so the parent can publish their DS records.
        let mut parent_children: Vec<(Name, Name, GlueKind, Ipv4Addr, Vec<Rdata>)> = Vec::new();
        let mut child_servers: Vec<(Ipv4Addr, ZoneServer)> = Vec::new();

        for (idx, spec) in specs.iter().enumerate() {
            let apex = base.child(spec.label).expect("valid label");
            let server_addr = child_server_addr(idx);
            let ns_name = apex.child("ns1").expect("valid label");
            let (zone, ds_rdatas) = materialize_child_zone(spec, &base, idx);

            // Register the child's server only when the glue actually
            // points at it; bad-glue children are unreachable by design.
            if matches!(spec.glue, GlueKind::Routable) {
                let behavior = match spec.server {
                    ServerMode::Normal => Behavior::Normal,
                    ServerMode::RefuseAll => Behavior::RefuseAll,
                    ServerMode::LocalhostOnly => Behavior::allow_localhost_only(),
                };
                let mut store = ZoneStore::new();
                store.insert(zone);
                child_servers.push((server_addr, ZoneServer::with_behavior(store, behavior)));
            }

            parent_children.push((apex, ns_name, spec.glue, server_addr, ds_rdatas));
        }

        // --- Parent zone: extended-dns-errors.com --------------------------
        let (mut parent_zone, _parent_ns) = skeleton(&base, PARENT_SERVER);
        parent_zone.add_a(base.clone(), Ipv4Addr::new(203, 0, 113, 251));
        for (child_apex, ns_name, glue, server_addr, ds_rdatas) in &parent_children {
            parent_zone.add(Record::new(
                child_apex.clone(),
                3600,
                Rdata::Ns(ns_name.clone()),
            ));
            match glue {
                GlueKind::Routable => parent_zone.add_a(ns_name.clone(), *server_addr),
                GlueKind::SpecialV4(addr) => {
                    parent_zone.add_a(ns_name.clone(), addr.parse().expect("valid v4"))
                }
                GlueKind::SpecialV6(addr) => {
                    parent_zone.add_aaaa(ns_name.clone(), addr.parse().expect("valid v6"))
                }
            }
            for ds in ds_rdatas {
                parent_zone.add(Record::new(child_apex.clone(), 3600, ds.clone()));
            }
        }
        let parent_keys = ZoneKeys::generate(&base, 8, 2048);
        signer::sign_zone(&mut parent_zone, &parent_keys, &SignerConfig::default());

        // --- com zone -------------------------------------------------------
        let (mut com_zone, _) = skeleton(&com, COM_SERVER);
        let base_ns = base.child("ns1").expect("valid");
        com_zone.add(Record::new(base.clone(), 3600, Rdata::Ns(base_ns.clone())));
        com_zone.add_a(base_ns, PARENT_SERVER);
        com_zone.add(Record::new(
            base.clone(),
            3600,
            parent_keys.ksk.ds_rdata(&base, DigestAlg::SHA256),
        ));
        let com_keys = ZoneKeys::generate(&com, 8, 2048);
        signer::sign_zone(&mut com_zone, &com_keys, &SignerConfig::default());

        // --- Root zone --------------------------------------------------------
        let (mut root_zone, _) = skeleton(&root, ROOT_SERVER);
        let com_ns = com.child("ns1").expect("valid");
        root_zone.add(Record::new(com.clone(), 3600, Rdata::Ns(com_ns.clone())));
        root_zone.add_a(com_ns, COM_SERVER);
        root_zone.add(Record::new(
            com.clone(),
            3600,
            com_keys.ksk.ds_rdata(&com, DigestAlg::SHA256),
        ));
        let root_keys = ZoneKeys::generate(&root, 8, 2048);
        signer::sign_zone(&mut root_zone, &root_keys, &SignerConfig::default());
        let trust_anchor = root_keys.ksk.ds_rdata(&root, DigestAlg::SHA256);

        // --- Wire up the network ------------------------------------------------
        let mut zone_servers: Vec<Arc<ZoneServer>> = Vec::new();
        {
            let mut add_server = |addr: Ipv4Addr, zone: Zone| {
                let mut store = ZoneStore::new();
                store.insert(zone);
                let server = Arc::new(ZoneServer::new(store));
                zone_servers.push(Arc::clone(&server));
                net.register(IpAddr::V4(addr), server);
            };
            add_server(ROOT_SERVER, root_zone);
            add_server(COM_SERVER, com_zone);
            add_server(PARENT_SERVER, parent_zone);
        }
        for (addr, server) in child_servers {
            let server = Arc::new(server);
            zone_servers.push(Arc::clone(&server));
            net.register(IpAddr::V4(addr), server);
        }
        let reporting_agent = Arc::new(ReportingAgent::new(
            Name::parse("agent.extended-dns-errors.com").expect("valid"),
        ));
        net.register(
            IpAddr::V4(REPORT_AGENT_SERVER),
            Arc::clone(&reporting_agent) as Arc<dyn ede_netsim::Server>,
        );

        let resolver_config = ResolverConfig::with_roots(
            vec![RootHint {
                name: Name::parse("a.root-servers.net").expect("valid"),
                addr: IpAddr::V4(ROOT_SERVER),
            }],
            vec![trust_anchor],
        );

        Testbed {
            net: Arc::new(net.build(clock)),
            base,
            specs,
            resolver_config,
            reporting_agent,
            zone_servers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_resolver::ValidationState;
    use ede_wire::{Rcode, RrType};

    #[test]
    fn valid_subdomain_resolves_secure() {
        let tb = Testbed::build();
        let resolver = tb.resolver(Vendor::Unbound);
        let spec = tb.spec("valid").unwrap();
        let res = resolver.resolve(&tb.query_name(spec), RrType::A);
        assert_eq!(res.rcode, Rcode::NoError, "diag: {:?}", res.diagnosis);
        assert!(res.answers.iter().any(|r| r.rtype() == RrType::A));
        assert_eq!(res.validation, ValidationState::Secure);
        assert!(res.authentic_data);
        assert!(res.ede.is_empty());
    }

    #[test]
    fn unsigned_subdomain_is_insecure_not_bogus() {
        let tb = Testbed::build();
        let resolver = tb.resolver(Vendor::Unbound);
        let spec = tb.spec("unsigned").unwrap();
        let res = resolver.resolve(&tb.query_name(spec), RrType::A);
        assert_eq!(res.rcode, Rcode::NoError, "diag: {:?}", res.diagnosis);
        assert_eq!(res.validation, ValidationState::Insecure);
        assert!(res.ede.is_empty());
    }

    #[test]
    fn expired_rrsig_is_servfail() {
        let tb = Testbed::build();
        let resolver = tb.resolver(Vendor::Unbound);
        let spec = tb.spec("rrsig-exp-all").unwrap();
        let res = resolver.resolve(&tb.query_name(spec), RrType::A);
        assert_eq!(res.rcode, Rcode::ServFail, "diag: {:?}", res.diagnosis);
        assert_eq!(res.ede_codes(), vec![7]);
    }

    #[test]
    fn bad_glue_returns_22_for_cloudflare() {
        let tb = Testbed::build();
        let resolver = tb.resolver(Vendor::Cloudflare);
        let spec = tb.spec("v4-private-10").unwrap();
        let res = resolver.resolve(&tb.query_name(spec), RrType::A);
        assert_eq!(res.rcode, Rcode::ServFail);
        assert_eq!(res.ede_codes(), vec![22], "diag: {:?}", res.diagnosis);
    }

    #[test]
    fn acl_case_returns_9_22_23_for_cloudflare() {
        let tb = Testbed::build();
        let resolver = tb.resolver(Vendor::Cloudflare);
        let spec = tb.spec("allow-query-none").unwrap();
        let res = resolver.resolve(&tb.query_name(spec), RrType::A);
        assert_eq!(res.rcode, Rcode::ServFail);
        assert_eq!(
            res.ede_codes(),
            vec![9, 22, 23],
            "diag: {:?}",
            res.diagnosis
        );
    }
}
