//! The headline reproduction test: resolve all 63 testbed subdomains
//! through all seven vendor profiles and compare the full EDE matrix
//! against the paper's Table 4.

use ede_resolver::Vendor;
use ede_testbed::expectations::table4;
use ede_testbed::{agreement, Testbed};
use ede_wire::RrType;

/// Run the whole matrix, returning (label, per-vendor codes).
fn simulate_matrix(tb: &Testbed) -> Vec<(String, Vec<Vec<u16>>)> {
    let mut rows = Vec::new();
    let resolvers: Vec<_> = Vendor::ALL.iter().map(|&v| tb.resolver(v)).collect();
    for spec in &tb.specs {
        let qname = tb.query_name(spec);
        let cols: Vec<Vec<u16>> = resolvers
            .iter()
            .map(|r| {
                // Flush per query: Table 4 describes independent probes,
                // not a warm shared cache.
                r.flush();
                r.resolve(&qname, RrType::A).ede_codes()
            })
            .collect();
        rows.push((spec.label.to_string(), cols));
    }
    rows
}

#[test]
fn full_table4_matrix_matches_paper() {
    let tb = Testbed::build();
    let simulated = simulate_matrix(&tb);
    let expected = table4();

    let mut mismatches = Vec::new();
    for (row, exp) in simulated.iter().zip(&expected) {
        assert_eq!(row.0, exp.label);
        for (i, vendor) in Vendor::ALL.iter().enumerate() {
            let want: Vec<u16> = exp.codes[i].to_vec();
            let got = &row.1[i];
            if *got != want {
                mismatches.push(format!(
                    "{:<26} {:<16} expected {:?} got {:?}",
                    row.0,
                    vendor.name(),
                    want,
                    got
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} Table 4 mismatches:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn agreement_statistics_match_paper() {
    let tb = Testbed::build();
    let simulated = simulate_matrix(&tb);

    let agreement = agreement::analyze(&simulated);
    assert_eq!(agreement.total, 63);
    assert_eq!(
        agreement.consistent, 4,
        "consistent: {:?}",
        agreement.consistent_labels
    );
    let pct = agreement.inconsistency_ratio() * 100.0;
    assert!((93.0..95.0).contains(&pct));

    let codes = agreement::unique_codes(&simulated);
    assert_eq!(codes.len(), 12, "unique codes: {codes:?}");
}
