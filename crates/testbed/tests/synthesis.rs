//! RFC 8198 testbed cells: synthesized denials must be
//! EDE-indistinguishable from live ones, per vendor.
//!
//! For every vendor profile, two resolvers walk the same denial-heavy
//! query sequence against the control domain — one with aggressive
//! NSEC/NSEC3 synthesis enabled, one live. The paper's measurement
//! instrument reads EDE codes off responses; a resolver that answers
//! from validated ranges (RFC 8198) returns the *same* codes, RCODEs
//! and AD bits, so the testbed matrix is pinned identical whether or
//! not the resolver asked the authority.

use ede_resolver::{Finding, Resolver, Vendor, VendorProfile};
use ede_testbed::Testbed;
use ede_wire::{Rcode, RrType};
use std::sync::Arc;

/// A resolver on this testbed with denial synthesis switched on (the
/// vendor gate still applies — OpenDNS stays live).
fn synthesizing_resolver(tb: &Testbed, vendor: Vendor) -> Resolver {
    let mut config = tb.resolver_config.clone();
    config.synthesize_denial = true;
    Resolver::new(Arc::clone(&tb.net), VendorProfile::new(vendor), config)
}

/// The denial-producing query sequence against the correctly-signed
/// control zone: one live NXDOMAIN to seed the range tier, a spread of
/// further nonexistent children (some of whose NSEC3 hashes land in the
/// seeded intervals), then a NODATA pair at the apex (the second probe
/// of an apex whose matching interval is cached synthesizes
/// deterministically).
fn denial_sequence(tb: &Testbed) -> Vec<(ede_wire::Name, RrType)> {
    let valid = tb.base.child("valid").expect("valid label");
    let mut seq: Vec<(ede_wire::Name, RrType)> = Vec::new();
    for i in 0..16 {
        let label = format!("ghost{i}");
        seq.push((valid.child(&label).expect("label fits"), RrType::A));
    }
    seq.push((valid.clone(), RrType::Aaaa));
    seq.push((valid, RrType::Txt));
    seq
}

#[test]
fn synthesized_denials_are_ede_identical_per_vendor() {
    let tb = Testbed::build();
    let seq = denial_sequence(&tb);
    for vendor in Vendor::ALL {
        let synth = synthesizing_resolver(&tb, vendor);
        let live = tb.resolver(vendor);
        assert_eq!(
            synth.synthesis_active(),
            vendor.synthesizes_denial(),
            "{vendor:?}: config and vendor gate disagree"
        );
        for (qname, qtype) in &seq {
            let s = synth.resolve(qname, *qtype);
            let l = live.resolve(qname, *qtype);
            assert_eq!(
                s.ede_codes(),
                l.ede_codes(),
                "{vendor:?} {qname} {qtype:?}: EDE diverged"
            );
            assert_eq!(s.rcode, l.rcode, "{vendor:?} {qname} {qtype:?}: RCODE");
            assert_eq!(
                s.authentic_data, l.authentic_data,
                "{vendor:?} {qname} {qtype:?}: AD bit"
            );
        }
        let hits = synth.range_stats().hits;
        if vendor.synthesizes_denial() {
            assert!(
                hits > 0,
                "{vendor:?}: no denial was ever answered from cached ranges"
            );
        } else {
            assert_eq!(hits, 0, "{vendor:?}: the vendor gate must keep it live");
        }
    }
}

/// The apex NODATA pair synthesizes deterministically (the matching
/// interval is retained by the first probe), records the dedicated
/// finding, and stays EDE-silent — the finding is mapped by no vendor.
#[test]
fn synthesized_nodata_records_finding_and_no_ede() {
    let tb = Testbed::build();
    let valid = tb.base.child("valid").expect("valid label");
    let resolver = synthesizing_resolver(&tb, Vendor::Bind9);

    let first = resolver.resolve(&valid, RrType::Aaaa);
    assert_eq!(first.rcode, Rcode::NoError);
    assert!(first.answers.is_empty());
    assert!(!first
        .diagnosis
        .findings
        .iter()
        .any(|f| matches!(f, Finding::SynthesizedDenial { .. })));

    let second = resolver.resolve(&valid, RrType::Txt);
    assert_eq!(second.rcode, Rcode::NoError);
    assert!(second.answers.is_empty());
    assert!(
        second
            .diagnosis
            .findings
            .iter()
            .any(|f| matches!(f, Finding::SynthesizedDenial { .. })),
        "second apex NODATA was not synthesized: {:?}",
        second.diagnosis.findings
    );
    assert!(second.ede.is_empty(), "synthesis must not surface an EDE");
    assert!(second.authentic_data, "validated ranges keep the AD bit");
    assert_eq!(resolver.range_stats().hits, 1);
}
