//! Every one of the 63 testbed zones — including the deliberately broken
//! ones — survives a master-file render → parse round trip losslessly.

use ede_testbed::build::materialize_child_zone;
use ede_testbed::domains::all_specs;
use ede_wire::Name;
use ede_zone::parse::parse_master_file;
use ede_zone::textual::zone_to_master_file;

#[test]
fn all_63_zones_roundtrip_through_master_files() {
    let base = Name::parse("extended-dns-errors.com").unwrap();
    for (idx, spec) in all_specs().iter().enumerate() {
        let (zone, _ds) = materialize_child_zone(spec, &base, idx);
        let text = zone_to_master_file(&zone);
        let parsed = parse_master_file(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}\n{text}", spec.label));
        assert_eq!(parsed, zone, "{} does not round-trip", spec.label);
    }
}
