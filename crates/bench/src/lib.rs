//! Criterion benchmarks for the EDE reproduction.
//!
//! Each bench target regenerates (and times) one of the paper's
//! artifacts:
//!
//! | target | paper artifact |
//! |---|---|
//! | `wire_codec` | message encode/decode throughput (scanner substrate) |
//! | `crypto_primitives` | SHA/NSEC3/keytag/simsig costs |
//! | `validation` | zone signing + chain validation |
//! | `table4_vendor_matrix` | Table 4 (63 × 7 resolution matrix) |
//! | `wild_scan` | §4.2 scan at a small scale |
//! | `figures` | Figures 1 and 2 aggregation |
//! | `ablations` | design-choice ablations (cache, profile specificity) |
//!
//! Shared helpers live here.

use ede_testbed::Testbed;

/// Build the testbed once per bench process.
pub fn shared_testbed() -> Testbed {
    Testbed::build()
}
