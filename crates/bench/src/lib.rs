#![warn(missing_docs)]

//! Benchmarks regenerating every table and figure of the paper.
//!
//! Each bench target regenerates (and times) one of the paper's
//! artifacts:
//!
//! | target | paper artifact |
//! |---|---|
//! | `wire_codec` | message encode/decode throughput (scanner substrate) |
//! | `crypto_primitives` | SHA/NSEC3/keytag/simsig costs |
//! | `validation` | zone signing + chain validation |
//! | `table4_vendor_matrix` | Table 4 (63 × 7 resolution matrix) |
//! | `wild_scan` | §4.2 scan at a small scale |
//! | `figures` | Figures 1 and 2 aggregation |
//! | `ablations` | design-choice ablations (cache, profile specificity) |
//!
//! The harness lives here: a small, dependency-free timer exposing a
//! criterion-shaped API (`Criterion::bench_function`, `Bencher::iter`,
//! groups, and the `criterion_group!`/`criterion_main!` macros), so the
//! bench sources read like standard Rust benchmarks. Invoked without
//! `--bench` (i.e. under `cargo test`) every benchmark runs exactly one
//! smoke iteration; `cargo bench` (or `EDE_BENCH=full`) does timed
//! sampling and prints per-iteration statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

use ede_testbed::Testbed;

/// Build the testbed once per bench process.
pub fn shared_testbed() -> Testbed {
    Testbed::build()
}

/// True when full measurement was requested (`--bench` on the command
/// line, as `cargo bench` passes, or `EDE_BENCH=full` in the
/// environment). Otherwise benchmarks run one smoke iteration each.
pub fn full_measurement() -> bool {
    std::env::args().any(|a| a == "--bench")
        || std::env::var("EDE_BENCH").is_ok_and(|v| v == "full")
}

/// Work performed per iteration, used to derive throughput figures.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver: times closures and prints per-iteration stats.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    group: Option<String>,
    throughput: Option<Throughput>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
            group: None,
            throughput: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Timed measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for criterion compatibility; the harness reports simple
    /// statistics and does not bootstrap.
    pub fn nresamples(self, _n: usize) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = match &self.group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        let mut b = Bencher {
            mode: if full_measurement() {
                Mode::Measure {
                    warm_up: self.warm_up,
                    measurement: self.measurement,
                    sample_size: self.sample_size,
                }
            } else {
                Mode::Smoke
            },
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(stats) => {
                let tp = match self.throughput {
                    Some(Throughput::Bytes(n)) => {
                        format!(
                            ", {:.1} MiB/s",
                            n as f64 / (stats.mean_ns / 1e9) / (1 << 20) as f64
                        )
                    }
                    Some(Throughput::Elements(n)) => {
                        format!(", {:.0} elem/s", n as f64 / (stats.mean_ns / 1e9))
                    }
                    None => String::new(),
                };
                println!(
                    "bench {full_name}: {} /iter (min {}, {} samples x {} iters{tp})",
                    fmt_ns(stats.mean_ns),
                    fmt_ns(stats.min_ns),
                    stats.samples,
                    stats.iters_per_sample,
                );
            }
            None => println!("bench {full_name}: smoke ok"),
        }
        self
    }

    /// Open a named group; benchmarks run through it are prefixed with
    /// the group name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let group = name.to_string();
        BenchmarkGroup { c: self, group }
    }
}

/// A named group of benchmarks (prefixing only).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration; reported as a
    /// throughput figure alongside per-iteration time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.c.throughput = Some(t);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.c.group = Some(self.group.clone());
        self.c.bench_function(&name.to_string(), f);
        self.c.group = None;
        self
    }

    /// Close the group.
    pub fn finish(self) {
        self.c.throughput = None;
    }
}

enum Mode {
    Smoke,
    Measure {
        warm_up: Duration,
        measurement: Duration,
        sample_size: usize,
    },
}

struct Stats {
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    mode: Mode,
    result: Option<Stats>,
}

impl Bencher {
    /// Time `f`. In smoke mode it runs once; in measurement mode the
    /// iteration count is calibrated to the measurement budget and the
    /// routine is sampled `sample_size` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure {
                warm_up,
                measurement,
                sample_size,
            } => {
                // Warm-up doubles as calibration: count how many
                // iterations fit in the warm-up budget.
                let start = Instant::now();
                let mut warm_iters: u64 = 0;
                while start.elapsed() < warm_up || warm_iters == 0 {
                    black_box(f());
                    warm_iters += 1;
                }
                let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
                let budget = measurement.as_secs_f64() / sample_size as f64;
                let iters = ((budget / per_iter) as u64).max(1);

                let mut sample_ns: Vec<f64> = Vec::with_capacity(sample_size);
                for _ in 0..sample_size {
                    let t = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    sample_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
                }
                let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
                let min_ns = sample_ns.iter().copied().fold(f64::INFINITY, f64::min);
                self.result = Some(Stats {
                    mean_ns,
                    min_ns,
                    samples: sample_size,
                    iters_per_sample: iters,
                });
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Define a bench entry point: a function running each target against
/// the given `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        // Under `cargo test` (no --bench, no EDE_BENCH=full) a bench
        // body executes exactly once.
        if !full_measurement() {
            let mut c = Criterion::default();
            let mut runs = 0;
            c.bench_function("noop", |b| b.iter(|| runs += 1));
            assert_eq!(runs, 1);
        }
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 µs");
        assert_eq!(fmt_ns(3_200_000.0), "3.20 ms");
    }
}
