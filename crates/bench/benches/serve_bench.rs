//! Tracked serving-throughput baseline: the `ede-server` front end
//! driven by in-process loopback clients over real OS sockets.
//!
//! Two modes, following the harness convention:
//!
//! * **smoke** (`cargo test -p ede-bench --bench serve_bench`, no
//!   `--bench` flag): a short burst against a 2-worker server,
//!   print-only — a CI-speed check that the serving path sustains load
//!   with zero client-visible errors and that stats reconcile.
//! * **full** (`cargo bench --bench serve_bench`, or `EDE_BENCH=full`):
//!   sweeps worker counts under a multi-client UDP load plus a TCP leg,
//!   and appends one entry per sweep point to `BENCH_serve.json` at the
//!   repo root.
//!
//! Reported latency is end-to-end client-observed round trip
//! (send → recv on a loopback socket), quantiled from the full sample
//! set; qps is total completed exchanges over wall-clock time. The mix
//! is ~2/3 cache-friendly repeats, which is what lets the sharded L1
//! tiers show up in the numbers.

use ede_resolver::Vendor;
use ede_server::{ProbeClient, Server, ServerConfig};
use ede_testbed::Testbed;
use ede_wire::{Message, Name, RrType};
use std::io::Write;
use std::time::Instant;

/// Worker counts swept in full mode.
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

/// Concurrent loopback clients per sweep point.
const CLIENTS: usize = 4;

/// Labels in the query mix: one clean repeat-heavy domain plus broken
/// domains exercising validation and EDE attachment.
const LABELS: [&str; 6] = [
    "valid",
    "valid",
    "valid",
    "rrsig-exp-all",
    "no-ds",
    "bad-zsk",
];

fn full_measurement() -> bool {
    std::env::args().any(|a| a == "--bench")
        || std::env::var("EDE_BENCH").is_ok_and(|v| v == "full")
}

/// `BENCH_serve.json` lives at the workspace root, two levels above
/// this crate's manifest.
fn bench_log_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json")
}

/// Append one entry line to the JSON-array log, creating it if absent.
fn append_entry(entry: &str) -> std::io::Result<()> {
    let path = bench_log_path();
    let body = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let without_close = trimmed
                .strip_suffix(']')
                .map(|s| s.trim_end().to_string())
                .unwrap_or_else(|| trimmed.to_string());
            if without_close.trim_end().ends_with('[') {
                format!("{without_close}\n{entry}\n]\n")
            } else {
                format!("{without_close},\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())
}

fn utc_date() -> String {
    // Days since the epoch → Y-M-D, enough precision for a bench log
    // and no chrono dependency.
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = secs / 86_400;
    let mut year = 1970u64;
    let mut remaining = days;
    loop {
        let leap =
            year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400));
        let len = if leap { 366 } else { 365 };
        if remaining < len {
            break;
        }
        remaining -= len;
        year += 1;
    }
    let leap = year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400));
    let month_lens = [
        31,
        if leap { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ];
    let mut month = 1;
    for len in month_lens {
        if remaining < len {
            break;
        }
        remaining -= len;
        month += 1;
    }
    format!("{year:04}-{month:02}-{:02}", remaining + 1)
}

/// One sweep point's client-observed outcome.
struct RunResult {
    exchanges: u64,
    seconds: f64,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    udp_responses: u64,
    tcp_responses: u64,
    server_p50_us: u64,
    server_p99_us: u64,
}

/// Run `queries_per_client` exchanges from `CLIENTS` threads against a
/// fresh server with `workers` UDP shards; returns client-observed
/// latency quantiles and reconciled server stats.
fn run_point(tb: &Testbed, workers: usize, queries_per_client: usize, tcp_leg: bool) -> RunResult {
    let handle = Server::spawn(
        tb.resolver(Vendor::Cloudflare),
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(workers)
            .build(),
    )
    .expect("spawn server");
    let (udp_addr, tcp_addr) = (handle.udp_addr(), handle.tcp_addr());

    let t = Instant::now();
    let mut joins = Vec::new();
    for c in 0..CLIENTS {
        joins.push(std::thread::spawn(move || -> Vec<u64> {
            let client = ProbeClient::connect(udp_addr, tcp_addr).expect("client connect");
            let mut latencies = Vec::with_capacity(queries_per_client);
            for i in 0..queries_per_client {
                let label = LABELS[(c + i) % LABELS.len()];
                let qname = Name::parse(&format!("{label}.extended-dns-errors.com")).unwrap();
                let query = Message::query((c * queries_per_client + i) as u16, qname, RrType::A);
                let wire = query.encode().unwrap();
                let start = Instant::now();
                let response = if tcp_leg && i % 10 == 9 {
                    client.query_tcp(&wire).expect("tcp exchange")
                } else {
                    client.query_udp(&wire).expect("udp exchange")
                };
                latencies.push(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
                assert!(response.len() >= 12, "short response");
            }
            latencies
        }));
    }
    let mut latencies: Vec<u64> = joins
        .into_iter()
        .flat_map(|j| j.join().expect("client thread"))
        .collect();
    let seconds = t.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        let idx = ((latencies.len() as f64 * q).ceil() as usize).saturating_sub(1);
        latencies[idx.min(latencies.len() - 1)]
    };
    let exchanges = latencies.len() as u64;
    let (p50_us, p99_us) = (quantile(0.50), quantile(0.99));

    let stats = handle.shutdown().expect("graceful shutdown");
    assert!(stats.drained, "drain deadline exceeded");
    assert_eq!(
        stats.metrics.responses(),
        exchanges,
        "server response count must reconcile with client receives"
    );
    assert_eq!(stats.metrics.encode_errors, 0);
    assert_eq!(stats.metrics.dropped, 0);

    RunResult {
        exchanges,
        seconds,
        qps: exchanges as f64 / seconds,
        p50_us,
        p99_us,
        udp_responses: stats.metrics.udp_responses,
        tcp_responses: stats.metrics.tcp_responses,
        server_p50_us: stats.metrics.handle_latency.quantile_us(0.50),
        server_p99_us: stats.metrics.handle_latency.quantile_us(0.99),
    }
}

fn main() {
    let full = full_measurement();
    eprintln!("serve_bench: building testbed...");
    let tb = Testbed::build();

    if !full {
        // CI-speed smoke: one short burst, stats must reconcile.
        let r = run_point(&tb, 2, 50, true);
        println!(
            "bench serve_bench/smoke: {} exchanges in {:.2} s ({:.0} qps, p50 {} µs, p99 {} µs, {} udp + {} tcp)",
            r.exchanges, r.seconds, r.qps, r.p50_us, r.p99_us, r.udp_responses, r.tcp_responses
        );
        return;
    }

    for workers in WORKER_SWEEP {
        let r = run_point(&tb, workers, 2_000, true);
        println!(
            "bench serve_bench/workers_{workers}: {} exchanges in {:.2} s ({:.0} qps, client p50 {} µs, p99 {} µs; server p50 {} µs, p99 {} µs)",
            r.exchanges, r.seconds, r.qps, r.p50_us, r.p99_us, r.server_p50_us, r.server_p99_us
        );
        let entry = format!(
            "{{\"recorded\": \"{}\", \"label\": \"serve_throughput\", \"workers\": {}, \"clients\": {}, \"exchanges\": {}, \"seconds\": {:.3}, \"qps\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, \"server_p50_us\": {}, \"server_p99_us\": {}, \"udp_responses\": {}, \"tcp_responses\": {}}}",
            utc_date(),
            workers,
            CLIENTS,
            r.exchanges,
            r.seconds,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.server_p50_us,
            r.server_p99_us,
            r.udp_responses,
            r.tcp_responses,
        );
        if let Err(e) = append_entry(&entry) {
            eprintln!("warning: could not append to BENCH_serve.json: {e}");
        }
    }
}
