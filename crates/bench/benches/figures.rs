//! Figures 1 and 2 benchmark: aggregation and CDF computation over a
//! scan result.

use ede_bench::{black_box, criterion_group, criterion_main, Criterion};
use ede_scan::aggregate::aggregate;
use ede_scan::scanner::{scan, ScanConfig};
use ede_scan::{stats, Population, PopulationConfig, ScanWorld};

fn bench_figures(c: &mut Criterion) {
    let cfg = PopulationConfig::tiny();
    let pop = Population::generate(cfg);
    let world = ScanWorld::build(&pop);
    let result = scan(&pop, &world, &ScanConfig::default());

    c.bench_function("aggregate_scan_result", |b| {
        b.iter(|| black_box(aggregate(&pop, &result)))
    });

    let agg = aggregate(&pop, &result);
    c.bench_function("figure1_cdfs", |b| {
        b.iter(|| {
            black_box(agg.figure1_gtld());
            black_box(agg.figure1_cctld());
        })
    });
    c.bench_function("figure2_cdf", |b| b.iter(|| black_box(agg.figure2())));

    let ratios: Vec<f64> = (0..2000).map(|i| f64::from(i % 101) / 100.0).collect();
    c.bench_function("cdf_2000_values", |b| {
        b.iter(|| black_box(stats::cdf(&ratios)))
    });
    let weights: Vec<usize> = (0..5000).map(|i| 5000 - i).collect();
    c.bench_function("concentration_5000_keys", |b| {
        b.iter(|| black_box(stats::keys_to_cover(&weights, 0.81)))
    });
}

fn fast() -> Criterion {
    // This suite runs on constrained single-core CI-style machines;
    // trade statistical tightness for wall time.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .nresamples(2000)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_figures
}
criterion_main!(benches);
