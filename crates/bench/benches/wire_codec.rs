//! Wire codec throughput: the per-message cost floor under the scanner.

use ede_bench::{black_box, criterion_group, criterion_main, Criterion};
use ede_wire::ede::{EdeCode, EdeEntry};
use ede_wire::rdata::Rdata;
use ede_wire::{Edns, Message, Name, Rcode, Record, RrType};

fn sample_response() -> Message {
    let qname = Name::parse("allow-query-none.extended-dns-errors.com").unwrap();
    let q = Message::query(0x1234, qname.clone(), RrType::A);
    let mut r = Message::response_to(&q);
    r.rcode = Rcode::ServFail;
    r.recursion_available = true;
    let mut edns = Edns::default();
    edns.push_ede(EdeEntry::bare(EdeCode::DnskeyMissing));
    edns.push_ede(EdeEntry::bare(EdeCode::NoReachableAuthority));
    edns.push_ede(EdeEntry::with_text(
        EdeCode::NetworkError,
        "185.199.110.1:53 rcode=REFUSED for allow-query-none.extended-dns-errors.com A",
    ));
    r.edns = Some(edns);
    for i in 0..4u8 {
        r.authorities.push(Record::new(
            Name::parse("extended-dns-errors.com").unwrap(),
            3600,
            Rdata::Ns(Name::parse(&format!("ns{i}.extended-dns-errors.com")).unwrap()),
        ));
    }
    r
}

fn bench_codec(c: &mut Criterion) {
    let msg = sample_response();
    let wire = msg.encode().unwrap();

    c.bench_function("encode_response_with_3_ede", |b| {
        b.iter(|| black_box(&msg).encode().unwrap())
    });
    c.bench_function("decode_response_with_3_ede", |b| {
        b.iter(|| Message::decode(black_box(&wire)).unwrap())
    });

    let query = Message::query(7, Name::parse("www.example.com").unwrap(), RrType::A);
    let query_wire = query.encode().unwrap();
    c.bench_function("encode_query", |b| {
        b.iter(|| black_box(&query).encode().unwrap())
    });
    c.bench_function("decode_query", |b| {
        b.iter(|| Message::decode(black_box(&query_wire)).unwrap())
    });

    c.bench_function("name_compression_10_names", |b| {
        b.iter(|| {
            let mut m = Message::query(1, Name::parse("a.example.com").unwrap(), RrType::A);
            for i in 0..10 {
                m.additionals.push(Record::new(
                    Name::parse(&format!("ns{i}.example.com")).unwrap(),
                    60,
                    Rdata::A("192.0.2.1".parse().unwrap()),
                ));
            }
            m.encode().unwrap()
        })
    });
}

fn fast() -> Criterion {
    // This suite runs on constrained single-core CI-style machines;
    // trade statistical tightness for wall time.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .nresamples(2000)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_codec
}
criterion_main!(benches);
