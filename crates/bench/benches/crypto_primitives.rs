//! Crypto primitive costs: hashing dominates NSEC3 work; simulated
//! signatures dominate zone signing.

use ede_bench::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ede_crypto::simsig::SigningKey;
use ede_crypto::{keytag, nsec3hash, Digest, Sha1, Sha256};

fn bench_crypto(c: &mut Criterion) {
    let data_1k = vec![0xA5u8; 1024];

    let mut group = c.benchmark_group("hash_1k");
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha1", |b| b.iter(|| Sha1::digest(black_box(&data_1k))));
    group.bench_function("sha256", |b| b.iter(|| Sha256::digest(black_box(&data_1k))));
    group.finish();

    let name_wire = {
        let mut w = Vec::new();
        for label in ["www", "example", "com"] {
            w.push(label.len() as u8);
            w.extend_from_slice(label.as_bytes());
        }
        w.push(0);
        w
    };
    c.bench_function("nsec3_hash_iter0", |b| {
        b.iter(|| nsec3hash::nsec3_hash(black_box(&name_wire), b"\xab\xcd", 0))
    });
    c.bench_function("nsec3_hash_iter150", |b| {
        b.iter(|| nsec3hash::nsec3_hash(black_box(&name_wire), b"\xab\xcd", 150))
    });

    let rdata = {
        let key = SigningKey::from_seed(8, 2048, b"bench");
        let mut r = vec![0x01, 0x01, 3, 8];
        r.extend_from_slice(&key.public_key());
        r
    };
    c.bench_function("key_tag", |b| b.iter(|| keytag::key_tag(black_box(&rdata))));

    let key = SigningKey::from_seed(8, 2048, b"bench");
    let msg = vec![0x42u8; 512];
    let sig = key.sign(&msg);
    let pk = key.public_key();
    c.bench_function("simsig_sign_512B", |b| b.iter(|| key.sign(black_box(&msg))));
    c.bench_function("simsig_verify_512B", |b| {
        b.iter(|| ede_crypto::simsig::verify(black_box(&pk), 8, black_box(&msg), black_box(&sig)))
    });
}

fn fast() -> Criterion {
    // This suite runs on constrained single-core CI-style machines;
    // trade statistical tightness for wall time.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .nresamples(2000)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_crypto
}
criterion_main!(benches);
