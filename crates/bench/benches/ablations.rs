//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **Caching** — the shared answer/key cache is what lets a public
//!   resolver absorb a scan; how much does it buy?
//! * **Profile specificity** — resolving the same testbed under each
//!   vendor profile measures whether emission complexity costs anything
//!   (it should not: emission is a pure function over findings).

use ede_bench::{black_box, criterion_group, criterion_main, Criterion};
use ede_resolver::{Resolver, Vendor, VendorProfile};
use ede_testbed::Testbed;
use ede_wire::RrType;
use std::sync::Arc;

fn bench_ablations(c: &mut Criterion) {
    let tb = Testbed::build();
    let spec = tb.spec("valid").expect("present");
    let qname = tb.query_name(spec);

    // --- Cache ablation -----------------------------------------------------
    let mut group = c.benchmark_group("ablation_cache");
    let cached = tb.resolver(Vendor::Cloudflare);
    cached.resolve(&qname, RrType::A); // warm
    group.bench_function("warm_cache_hit", |b| {
        b.iter(|| black_box(cached.resolve(&qname, RrType::A)))
    });

    let mut no_cache_cfg = tb.resolver_config.clone();
    no_cache_cfg.enable_cache = false;
    let uncached = Resolver::new(
        Arc::clone(&tb.net),
        VendorProfile::new(Vendor::Cloudflare),
        no_cache_cfg,
    );
    group.bench_function("cache_disabled_full_recursion", |b| {
        b.iter(|| {
            uncached.flush(); // also clears the zone-key cache
            black_box(uncached.resolve(&qname, RrType::A))
        })
    });
    group.finish();

    // --- Profile-specificity ablation ---------------------------------------------
    // Same broken zone, all seven emission policies: the diagnosis work
    // is identical, so timing differences isolate the emission layer.
    let broken = tb.spec("no-rrsig-ksk").expect("present");
    let broken_name = tb.query_name(broken);
    let mut group = c.benchmark_group("ablation_profiles");
    for vendor in Vendor::ALL {
        let r = tb.resolver(vendor);
        group.bench_function(vendor.name(), |b| {
            b.iter(|| {
                r.flush();
                black_box(r.resolve(&broken_name, RrType::A))
            })
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    // This suite runs on constrained single-core CI-style machines;
    // trade statistical tightness for wall time.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .nresamples(2000)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_ablations
}
criterion_main!(benches);
