//! Tracked scan-throughput baseline: the §4.2 scan at reproduction
//! scale (1:1000, 303 k domains), swept across worker counts and
//! per-worker in-flight windows.
//!
//! Two modes, following the harness convention:
//!
//! * **smoke** (`cargo test -p ede-bench --bench scan_throughput`, no
//!   `--bench` flag): one tiny-population scan per sweep point,
//!   print-only — a CI-speed check that the sweep machinery works and
//!   that results are bit-identical at every (workers, inflight) point.
//! * **full** (`cargo bench --bench scan_throughput`, or
//!   `EDE_BENCH=full`): scans 303 k domains across the sweep and
//!   appends one entry per run to `BENCH_scan.json` at the repo
//!   root, so regressions show up as history, not anecdotes.
//!
//! The sweep covers the thread dimension at the blocking baseline
//! (workers ∈ {1, 4, 8, 16}, inflight 1) and the event-driven task-pool
//! dimension on a single worker (inflight ∈ {32, 256}).
//!
//! `BENCH_scan.json` is a JSON array with one entry per line, so new
//! entries append as single lines and diffs stay readable. Entries
//! carry an `"inflight"` field (absent in pre-task-pool history, where
//! it was implicitly 1). See docs/PERFORMANCE.md for the schema and
//! current numbers.

use ede_scan::scanner::{self, ScanConfig};
use ede_scan::{Population, PopulationConfig, ScanWorld};
use std::io::Write;
use std::time::Instant;

/// (workers, inflight) sweep points.
const SWEEP: [(usize, usize); 6] = [(1, 1), (4, 1), (8, 1), (16, 1), (1, 32), (1, 256)];

/// Scale divisor for the full measurement (1:1000 — the same
/// population `repro-scan` defaults to, 303 k domains).
const FULL_SCALE: u32 = 1000;

fn full_measurement() -> bool {
    std::env::args().any(|a| a == "--bench")
        || std::env::var("EDE_BENCH").is_ok_and(|v| v == "full")
}

/// `BENCH_scan.json` lives at the workspace root, two levels above this
/// crate's manifest.
fn bench_log_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scan.json")
}

/// Append one entry line to the JSON-array log, creating it if absent.
/// The file is a JSON array with one object per line; appending swaps
/// the final `]` for `,\n<entry>\n]`.
fn append_entry(entry: &str) -> std::io::Result<()> {
    let path = bench_log_path();
    let body = match std::fs::read_to_string(&path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let without_close = trimmed
                .strip_suffix(']')
                .map(|s| s.trim_end().to_string())
                .unwrap_or_else(|| trimmed.to_string());
            if without_close.trim_end().ends_with('[') {
                format!("{without_close}\n{entry}\n]\n")
            } else {
                format!("{without_close},\n{entry}\n]\n")
            }
        }
        Err(_) => format!("[\n{entry}\n]\n"),
    };
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())
}

fn utc_date() -> String {
    // Days since the epoch → Y-M-D, enough precision for a bench log
    // and no chrono dependency.
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = secs / 86_400;
    let mut year = 1970u64;
    let mut remaining = days;
    loop {
        let leap =
            year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400));
        let len = if leap { 366 } else { 365 };
        if remaining < len {
            break;
        }
        remaining -= len;
        year += 1;
    }
    let leap = year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400));
    let month_lens = [
        31,
        if leap { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ];
    let mut month = 1;
    for len in month_lens {
        if remaining < len {
            break;
        }
        remaining -= len;
        month += 1;
    }
    format!("{year:04}-{month:02}-{:02}", remaining + 1)
}

fn main() {
    let full = full_measurement();
    let cfg = if full {
        PopulationConfig {
            scale: FULL_SCALE,
            ..Default::default()
        }
    } else {
        PopulationConfig::tiny()
    };
    eprintln!(
        "scan_throughput: generating population (scale 1:{})...",
        cfg.scale
    );
    let pop = Population::generate(cfg);
    let domains = pop.domains.len();

    let mut reference: Option<String> = None;
    for (workers, inflight) in SWEEP {
        // Fresh world per run: flap state and the virtual clock are
        // part of the scan, and sharing them would leak state between
        // sweep points.
        let world = ScanWorld::build(&pop);
        let scan_cfg = ScanConfig::builder()
            .workers(workers)
            .inflight(inflight)
            .progress(false)
            .build();
        let t = Instant::now();
        let result = scanner::scan(&pop, &world, &scan_cfg);
        let secs = t.elapsed().as_secs_f64();
        let rate = domains as f64 / secs;
        println!(
            "bench scan_throughput/workers_{workers}_inflight_{inflight}: {domains} domains in {secs:.2} s ({rate:.0} domains/s)"
        );

        // Results must be bit-identical at every sweep point: compare
        // the per-code inventory against the first run (the blocking
        // single-worker baseline).
        let fingerprint = format!("{:016x}", result.stats.fingerprint);
        match &reference {
            None => reference = Some(fingerprint),
            Some(r) => assert_eq!(
                *r, fingerprint,
                "scan results diverged at workers={workers} inflight={inflight}"
            ),
        }

        if full {
            let cache = &result.cache;
            let entry = format!(
                "{{\"recorded\": \"{}\", \"label\": \"scan_throughput\", \"scale\": {}, \"workers\": {}, \"inflight\": {}, \"domains\": {}, \"seconds\": {:.3}, \"domains_per_sec\": {:.0}, \"queries_per_domain\": {:.3}, \"l1_hit_pct\": {:.1}, \"l2_hit_pct\": {:.1}, \"referral_hit_pct\": {:.1}, \"evictions\": {}, \"aggregate_merge_ns\": {}, \"querylog_peak\": {}}}",
                utc_date(),
                FULL_SCALE,
                workers,
                inflight,
                domains,
                secs,
                rate,
                result.queries_per_domain(),
                result.stats.cache.l1_hit_pct(),
                result.stats.cache.l2_hit_pct(),
                result.stats.cache.referral_hit_pct(),
                cache.l2.evicted,
                result.stream.merge_ns,
                result.log.peak,
            );
            if let Err(e) = append_entry(&entry) {
                eprintln!("warning: could not append to BENCH_scan.json: {e}");
            }
        }
    }

    // RFC 8198 denial-synthesis legs: the same scan with a post-pass
    // sweep of nonexistent probes, once live and once answered from the
    // validated range tier. Synthesis must leave the observation
    // inventory bit-identical (retained intervals never cover a
    // registered name); the economics — upstream queries per domain and
    // the share of sweep probes served from cache — are what the legs
    // exist to record.
    let mut synthesis_qpd = [0.0f64; 2];
    for (i, synthesize) in [false, true].into_iter().enumerate() {
        let world = ScanWorld::build(&pop);
        let scan_cfg = ScanConfig::builder()
            .workers(8)
            .progress(false)
            .synthesize(synthesize)
            .sweep_ratio(1.5)
            .build();
        let t = Instant::now();
        let result = scanner::scan(&pop, &world, &scan_cfg);
        let secs = t.elapsed().as_secs_f64();
        let fingerprint = format!("{:016x}", result.stats.fingerprint);
        assert_eq!(
            *reference.as_ref().expect("sweep ran"),
            fingerprint,
            "denial synthesis (on={synthesize}) changed scan results"
        );
        let sweep = result.sweep.as_ref().expect("sweep_ratio 1.5 ran");
        synthesis_qpd[i] = result.queries_per_domain();
        let hit_pct = 100.0 * sweep.hit_ratio();
        println!(
            "bench scan_throughput/synthesis_{}: {:.3} queries/domain, sweep {}/{} from ranges ({:.1}%)",
            if synthesize { "on" } else { "off" },
            synthesis_qpd[i],
            sweep.synthesized,
            sweep.probes,
            hit_pct,
        );
        if synthesize {
            assert!(sweep.synthesized > 0, "sweep never hit the range tier");
            assert!(result.cache.range.hits > 0);
        } else {
            assert_eq!(sweep.synthesized, 0, "synthesis fired while disabled");
        }
        if full {
            let entry = format!(
                "{{\"recorded\": \"{}\", \"label\": \"scan_synthesis_{}\", \"scale\": {}, \"workers\": 8, \"inflight\": 1, \"domains\": {}, \"seconds\": {:.3}, \"queries_per_domain\": {:.3}, \"sweep_probes\": {}, \"sweep_synthesized\": {}, \"range_hit_pct\": {:.1}}}",
                utc_date(),
                if synthesize { "on" } else { "off" },
                FULL_SCALE,
                domains,
                secs,
                synthesis_qpd[i],
                sweep.probes,
                sweep.synthesized,
                hit_pct,
            );
            if let Err(e) = append_entry(&entry) {
                eprintln!("warning: could not append to BENCH_scan.json: {e}");
            }
        }
    }
    assert!(
        synthesis_qpd[1] < synthesis_qpd[0],
        "synthesis did not reduce upstream traffic: {:.3} vs {:.3} queries/domain",
        synthesis_qpd[1],
        synthesis_qpd[0]
    );

    // Tier-configuration smoke legs (CI-speed, tiny population only):
    //
    // * L1 disabled must be bit-identical to the reference — the L1 is
    //   a pure performance tier.
    // * A shared-cache budget far below the working set must still
    //   complete, with nonzero evictions (bounded memory is the point;
    //   eviction legally changes results, so no fingerprint assert).
    if !full {
        let reference = reference.as_ref().expect("sweep ran");
        let world = ScanWorld::build(&pop);
        let no_l1 = scanner::scan(
            &pop,
            &world,
            &ScanConfig::builder()
                .workers(4)
                .progress(false)
                .l1(false)
                .build(),
        );
        let fp = format!("{:016x}", no_l1.stats.fingerprint);
        assert_eq!(*reference, fp, "disabling the L1 tier changed results");
        assert_eq!(no_l1.cache.l1.hits + no_l1.cache.l1.misses, 0);

        let world = ScanWorld::build(&pop);
        let budgeted = scanner::scan(
            &pop,
            &world,
            &ScanConfig::builder()
                .workers(4)
                .progress(false)
                .max_cache_entries(Some(8))
                .build(),
        );
        assert_eq!(budgeted.stats.ede.total_domains, domains);
        assert!(
            budgeted.cache.l2.evicted > 0,
            "an 8-entry budget must evict"
        );
        assert!(budgeted.cache.l2.occupancy <= 8);

        // A range budget far below the retained working set: bounded
        // occupancy, nonzero evictions, and — because evicting a range
        // only forfeits synthesis, never changes an answer — still
        // bit-identical observations.
        let world = ScanWorld::build(&pop);
        let range_budget = scanner::scan(
            &pop,
            &world,
            &ScanConfig::builder()
                .workers(4)
                .progress(false)
                .synthesize(true)
                .sweep_ratio(1.5)
                .max_range_entries(Some(8))
                .build(),
        );
        let fp = format!("{:016x}", range_budget.stats.fingerprint);
        assert_eq!(*reference, fp, "a tiny range budget changed results");
        assert!(
            range_budget.cache.range.evicted > 0,
            "an 8-span range budget must evict"
        );
        assert!(range_budget.cache.range.occupancy <= 8);
        println!(
            "bench scan_throughput: smoke ok (results bit-identical across {SWEEP:?} (workers, inflight) points, with L1 off, and with synthesis on; 8-entry L2 budget evicted {}; 8-span range budget evicted {})",
            budgeted.cache.l2.evicted,
            range_budget.cache.range.evicted
        );
    }
}
