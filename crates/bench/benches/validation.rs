//! Zone signing and chain-validation costs: the per-zone work behind
//! both the testbed and the synthesized scan world.

use ede_bench::{black_box, criterion_group, criterion_main, Criterion};
use ede_resolver::diagnosis::Diagnosis;
use ede_resolver::profiles::ValidatorCaps;
use ede_resolver::validate;
use ede_wire::rdata::Soa;
use ede_wire::{DigestAlg, Name, Rdata, Record, RrType};
use ede_zone::signer::{sign_zone, SignerConfig, SIM_NOW};
use ede_zone::{Zone, ZoneKeys};

fn build_zone(apex: &Name) -> Zone {
    let mut z = Zone::new(apex.clone());
    z.add(Record::new(
        apex.clone(),
        3600,
        Rdata::Soa(Soa {
            mname: apex.child("ns1").unwrap(),
            rname: apex.child("hostmaster").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }),
    ));
    z.add(Record::new(
        apex.clone(),
        3600,
        Rdata::Ns(apex.child("ns1").unwrap()),
    ));
    z.add_a(apex.child("ns1").unwrap(), "192.0.2.1".parse().unwrap());
    z.add_a(apex.clone(), "192.0.2.2".parse().unwrap());
    for i in 0..8 {
        z.add_a(
            apex.child(&format!("host{i}")).unwrap(),
            "192.0.2.3".parse().unwrap(),
        );
    }
    z
}

fn bench_validation(c: &mut Criterion) {
    let apex = Name::parse("bench.example").unwrap();
    let keys = ZoneKeys::generate(&apex, 8, 2048);
    let cfg = SignerConfig::default();

    c.bench_function("sign_zone_12_names", |b| {
        b.iter(|| {
            let mut z = build_zone(&apex);
            sign_zone(&mut z, &keys, &cfg);
            black_box(z)
        })
    });

    let mut signed = build_zone(&apex);
    sign_zone(&mut signed, &keys, &cfg);
    let ds = vec![keys.ksk.ds_rdata(&apex, DigestAlg::SHA256)];
    let dnskey = signed.get(&apex, RrType::Dnskey).unwrap().clone();
    let caps = ValidatorCaps::full();

    c.bench_function("validate_dnskey_chain_link", |b| {
        b.iter(|| {
            let mut diag = Diagnosis::new();
            black_box(validate::validate_dnskey(
                &apex, &ds, &dnskey, &caps, SIM_NOW, &mut diag,
            ))
        })
    });

    let a_set = signed.get(&apex, RrType::A).unwrap().clone();
    let trusted = {
        let mut diag = Diagnosis::new();
        validate::validate_dnskey(&apex, &ds, &dnskey, &caps, SIM_NOW, &mut diag)
            .trusted
            .expect("valid chain")
    };
    c.bench_function("check_rrset_signature", |b| {
        b.iter(|| {
            let mut diag = Diagnosis::new();
            black_box(validate::check_rrset(
                &a_set,
                &trusted,
                &caps,
                SIM_NOW,
                ede_resolver::diagnosis::SigTarget::Answer,
                &mut diag,
            ))
        })
    });
}

fn fast() -> Criterion {
    // This suite runs on constrained single-core CI-style machines;
    // trade statistical tightness for wall time.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .nresamples(2000)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_validation
}
criterion_main!(benches);
