//! Table 4 regeneration benchmark: the full 63 × 7 resolution matrix,
//! plus single-case resolutions per vendor.

use ede_bench::{black_box, criterion_group, criterion_main, Criterion};
use ede_resolver::Vendor;
use ede_testbed::Testbed;
use ede_wire::RrType;

fn bench_matrix(c: &mut Criterion) {
    let tb = Testbed::build();

    c.bench_function("testbed_build", |b| b.iter(|| black_box(Testbed::build())));

    let mut group = c.benchmark_group("single_resolution");
    for vendor in [Vendor::Unbound, Vendor::Cloudflare] {
        let resolver = tb.resolver(vendor);
        let spec = tb.spec("rrsig-exp-all").expect("present");
        let qname = tb.query_name(spec);
        group.bench_function(format!("rrsig-exp-all/{}", vendor.name()), |b| {
            b.iter(|| {
                resolver.flush();
                black_box(resolver.resolve(&qname, RrType::A))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table4");
    group.bench_function("full_63x7_matrix", |b| {
        let resolvers: Vec<_> = Vendor::ALL.iter().map(|&v| tb.resolver(v)).collect();
        b.iter(|| {
            let mut cells = 0usize;
            for spec in &tb.specs {
                let qname = tb.query_name(spec);
                for r in &resolvers {
                    r.flush();
                    let res = r.resolve(&qname, RrType::A);
                    cells += res.ede.len();
                }
            }
            black_box(cells)
        })
    });
    group.finish();
}

fn fast() -> Criterion {
    // This suite runs on constrained single-core CI-style machines;
    // trade statistical tightness for wall time.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .nresamples(2000)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_matrix
}
criterion_main!(benches);
