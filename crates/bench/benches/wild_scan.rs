//! §4.2 scan benchmark: end-to-end scan throughput at a small scale
//! (population generation, world build, and the scan itself).

use ede_bench::{black_box, criterion_group, criterion_main, Criterion};
use ede_scan::scanner::ScanConfig;
use ede_scan::{scanner, Population, PopulationConfig, ScanWorld};

fn bench_scan(c: &mut Criterion) {
    let cfg = PopulationConfig::tiny();

    c.bench_function("population_generate_tiny", |b| {
        b.iter(|| black_box(Population::generate(cfg.clone())))
    });

    let pop = Population::generate(cfg.clone());
    c.bench_function("world_build_tiny", |b| {
        b.iter(|| black_box(ScanWorld::build(&pop)))
    });

    let mut group = c.benchmark_group("scan");
    group.bench_function("tiny_population_single_thread", |b| {
        b.iter(|| {
            // Fresh world per iteration: flap state and the virtual
            // clock are part of the scan.
            let world = ScanWorld::build(&pop);
            let result = scanner::scan(&pop, &world, &ScanConfig::builder().workers(1).build());
            black_box(result.records.len())
        })
    });
    group.bench_function("tiny_population_parallel", |b| {
        b.iter(|| {
            let world = ScanWorld::build(&pop);
            let result = scanner::scan(&pop, &world, &ScanConfig::default());
            black_box(result.records.len())
        })
    });
    group.finish();
}

fn fast() -> Criterion {
    // This suite runs on constrained single-core CI-style machines;
    // trade statistical tightness for wall time.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
        .nresamples(2000)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_scan
}
criterion_main!(benches);
