//! Serving-front-end metrics: the wall-clock side of the registry.
//!
//! The resolution [`Metrics`](crate::Metrics) registry counts what the
//! *simulated* stack does, stamped on the virtual clock. A serving
//! front end (the `ede-server` crate) lives on the other side of that
//! boundary: real sockets, real threads, real time. [`ServerMetrics`]
//! is its registry — lock-free atomic counters for every transport
//! decision the server makes (queries per transport, truncations,
//! malformed-query dispositions, connection caps) plus a
//! microsecond-resolution latency histogram for in-process
//! request-handling time.
//!
//! Snapshots ([`ServerMetricsSnapshot`]) render to an operator summary
//! or a single-line JSON document, which is what the server's periodic
//! export loop hands to [`SnapshotSink`](crate::SnapshotSink)s for
//! runtime qps/latency gauges.

use crate::json::json_string;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Latency histogram bucket upper bounds in **microseconds**, chosen
/// around in-process loopback serving times (tens of µs for a cache
/// hit) up to full cold resolutions (ms range).
pub const SERVER_LATENCY_BUCKETS_US: [u64; 10] =
    [25, 50, 100, 250, 500, 1_000, 2_500, 10_000, 50_000, 250_000];

/// A fixed-bucket microsecond histogram over atomic counters; the
/// serving hot path observes without taking any lock.
#[derive(Debug, Default)]
struct AtomicUsHistogram {
    counts: [AtomicU64; SERVER_LATENCY_BUCKETS_US.len() + 1],
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicUsHistogram {
    fn observe(&self, value_us: u64) {
        let idx = SERVER_LATENCY_BUCKETS_US
            .iter()
            .position(|&ub| value_us <= ub)
            .unwrap_or(SERVER_LATENCY_BUCKETS_US.len());
        self.counts[idx].fetch_add(1, Relaxed);
        self.total.fetch_add(1, Relaxed);
        self.sum.fetch_add(value_us, Relaxed);
        self.max.fetch_max(value_us, Relaxed);
    }

    fn snapshot(&self) -> UsHistogram {
        UsHistogram {
            counts: std::array::from_fn(|i| self.counts[i].load(Relaxed)),
            total: self.total.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// A frozen microsecond histogram (buckets in
/// [`SERVER_LATENCY_BUCKETS_US`], plus an overflow slot).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct UsHistogram {
    /// Per-bucket observation counts; `counts[i]` holds observations
    /// `<= SERVER_LATENCY_BUCKETS_US[i]`, the final slot the overflow.
    pub counts: [u64; SERVER_LATENCY_BUCKETS_US.len() + 1],
    /// Total observations.
    pub total: u64,
    /// Sum of observed values, µs (for the mean).
    pub sum: u64,
    /// Largest observed value, µs.
    pub max: u64,
}

impl UsHistogram {
    /// Mean observed value in µs, or 0 with no observations.
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket containing
    /// the `q`-quantile observation (`q` in `[0, 1]`).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return SERVER_LATENCY_BUCKETS_US
                    .get(i)
                    .copied()
                    .unwrap_or(self.max);
            }
        }
        self.max
    }
}

/// The live serving registry. Share as `Arc<ServerMetrics>` between
/// every worker/acceptor/connection thread; read with
/// [`snapshot`](ServerMetrics::snapshot).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    udp_queries: AtomicU64,
    udp_responses: AtomicU64,
    udp_truncated: AtomicU64,
    tcp_queries: AtomicU64,
    tcp_responses: AtomicU64,
    tcp_conns_accepted: AtomicU64,
    tcp_conns_refused: AtomicU64,
    tcp_read_timeouts: AtomicU64,
    rejected_formerr: AtomicU64,
    rejected_notimp: AtomicU64,
    rejected_refused: AtomicU64,
    dropped: AtomicU64,
    encode_errors: AtomicU64,
    bytes_received: AtomicU64,
    bytes_sent: AtomicU64,
    handle_latency: AtomicUsHistogram,
}

impl ServerMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// One query datagram arrived over UDP (`bytes` on the wire).
    pub fn udp_query(&self, bytes: usize) {
        self.udp_queries.fetch_add(1, Relaxed);
        self.bytes_received.fetch_add(bytes as u64, Relaxed);
    }

    /// One response datagram left over UDP; `truncated` when it carried
    /// TC=1 because the full answer exceeded the negotiated payload.
    pub fn udp_response(&self, bytes: usize, truncated: bool) {
        self.udp_responses.fetch_add(1, Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Relaxed);
        if truncated {
            self.udp_truncated.fetch_add(1, Relaxed);
        }
    }

    /// One framed query arrived over a stream connection.
    pub fn tcp_query(&self, bytes: usize) {
        self.tcp_queries.fetch_add(1, Relaxed);
        self.bytes_received.fetch_add(bytes as u64, Relaxed);
    }

    /// One framed response left over a stream connection.
    pub fn tcp_response(&self, bytes: usize) {
        self.tcp_responses.fetch_add(1, Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Relaxed);
    }

    /// A stream connection was accepted.
    pub fn tcp_conn_accepted(&self) {
        self.tcp_conns_accepted.fetch_add(1, Relaxed);
    }

    /// A stream connection was turned away at the connection cap.
    pub fn tcp_conn_refused(&self) {
        self.tcp_conns_refused.fetch_add(1, Relaxed);
    }

    /// A stream connection idled past its read deadline and was closed.
    pub fn tcp_read_timeout(&self) {
        self.tcp_read_timeouts.fetch_add(1, Relaxed);
    }

    /// A malformed query was answered with FORMERR.
    pub fn rejected_formerr(&self) {
        self.rejected_formerr.fetch_add(1, Relaxed);
    }

    /// A non-QUERY opcode was answered with NOTIMP.
    pub fn rejected_notimp(&self) {
        self.rejected_notimp.fetch_add(1, Relaxed);
    }

    /// A query outside the served class was answered with REFUSED.
    pub fn rejected_refused(&self) {
        self.rejected_refused.fetch_add(1, Relaxed);
    }

    /// A datagram was dropped without any reply (shorter than a DNS
    /// header, or a response where a query belongs).
    pub fn dropped(&self) {
        self.dropped.fetch_add(1, Relaxed);
    }

    /// A reply failed to encode (never sent).
    pub fn encode_error(&self) {
        self.encode_errors.fetch_add(1, Relaxed);
    }

    /// Observe one request's in-process handling time, µs (receive →
    /// response handed to the socket).
    pub fn observe_handle_us(&self, us: u64) {
        self.handle_latency.observe(us);
    }

    /// A point-in-time copy of every counter and the histogram.
    pub fn snapshot(&self) -> ServerMetricsSnapshot {
        ServerMetricsSnapshot {
            udp_queries: self.udp_queries.load(Relaxed),
            udp_responses: self.udp_responses.load(Relaxed),
            udp_truncated: self.udp_truncated.load(Relaxed),
            tcp_queries: self.tcp_queries.load(Relaxed),
            tcp_responses: self.tcp_responses.load(Relaxed),
            tcp_conns_accepted: self.tcp_conns_accepted.load(Relaxed),
            tcp_conns_refused: self.tcp_conns_refused.load(Relaxed),
            tcp_read_timeouts: self.tcp_read_timeouts.load(Relaxed),
            rejected_formerr: self.rejected_formerr.load(Relaxed),
            rejected_notimp: self.rejected_notimp.load(Relaxed),
            rejected_refused: self.rejected_refused.load(Relaxed),
            dropped: self.dropped.load(Relaxed),
            encode_errors: self.encode_errors.load(Relaxed),
            bytes_received: self.bytes_received.load(Relaxed),
            bytes_sent: self.bytes_sent.load(Relaxed),
            handle_latency: self.handle_latency.snapshot(),
        }
    }
}

/// A frozen copy of [`ServerMetrics`], safe to move across threads and
/// render offline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerMetricsSnapshot {
    /// Query datagrams received over UDP.
    pub udp_queries: u64,
    /// Response datagrams sent over UDP.
    pub udp_responses: u64,
    /// ... of which carried TC=1 (client must retry over a stream).
    pub udp_truncated: u64,
    /// Framed queries received over stream connections.
    pub tcp_queries: u64,
    /// Framed responses sent over stream connections.
    pub tcp_responses: u64,
    /// Stream connections accepted.
    pub tcp_conns_accepted: u64,
    /// Stream connections turned away at the connection cap.
    pub tcp_conns_refused: u64,
    /// Stream connections closed for idling past the read deadline.
    pub tcp_read_timeouts: u64,
    /// Malformed queries answered with FORMERR.
    pub rejected_formerr: u64,
    /// Non-QUERY opcodes answered with NOTIMP.
    pub rejected_notimp: u64,
    /// Out-of-class queries answered with REFUSED.
    pub rejected_refused: u64,
    /// Datagrams dropped without any reply.
    pub dropped: u64,
    /// Replies that failed to encode.
    pub encode_errors: u64,
    /// Total payload bytes received.
    pub bytes_received: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// In-process request-handling latency, µs.
    pub handle_latency: UsHistogram,
}

impl ServerMetricsSnapshot {
    /// Total queries across both transports.
    pub fn queries(&self) -> u64 {
        self.udp_queries + self.tcp_queries
    }

    /// Total responses across both transports.
    pub fn responses(&self) -> u64 {
        self.udp_responses + self.tcp_responses
    }

    /// Render as an operator-facing summary block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("server metrics\n");
        out.push_str(&format!(
            "  udp       : {} queries, {} responses ({} truncated)\n",
            self.udp_queries, self.udp_responses, self.udp_truncated
        ));
        out.push_str(&format!(
            "  tcp       : {} queries, {} responses; {} conns accepted, {} refused, {} idle timeouts\n",
            self.tcp_queries,
            self.tcp_responses,
            self.tcp_conns_accepted,
            self.tcp_conns_refused,
            self.tcp_read_timeouts
        ));
        out.push_str(&format!(
            "  rejected  : {} FORMERR, {} NOTIMP, {} REFUSED, {} dropped, {} encode errors\n",
            self.rejected_formerr,
            self.rejected_notimp,
            self.rejected_refused,
            self.dropped,
            self.encode_errors
        ));
        out.push_str(&format!(
            "  traffic   : {} bytes in, {} bytes out\n",
            self.bytes_received, self.bytes_sent
        ));
        out.push_str(&format!(
            "  latency   : mean {:.1} µs, p50 {} µs, p99 {} µs, max {} µs\n",
            self.handle_latency.mean_us(),
            self.handle_latency.quantile_us(0.50),
            self.handle_latency.quantile_us(0.99),
            self.handle_latency.max
        ));
        out
    }

    /// Serialize as one JSON object line (no trailing newline). Extra
    /// key/value pairs (already JSON-rendered values, e.g. a computed
    /// qps gauge) are prepended — this is what the serving front end's
    /// snapshot exporter feeds to [`SnapshotSink`](crate::SnapshotSink)s.
    pub fn to_json_with(&self, extra: &[(&str, String)]) -> String {
        let mut fields: Vec<(&str, String)> = Vec::with_capacity(extra.len() + 18);
        fields.push(("schema", json_string("ede-server-stats/1")));
        fields.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
        fields.extend([
            ("udp_queries", self.udp_queries.to_string()),
            ("udp_responses", self.udp_responses.to_string()),
            ("udp_truncated", self.udp_truncated.to_string()),
            ("tcp_queries", self.tcp_queries.to_string()),
            ("tcp_responses", self.tcp_responses.to_string()),
            ("tcp_conns_accepted", self.tcp_conns_accepted.to_string()),
            ("tcp_conns_refused", self.tcp_conns_refused.to_string()),
            ("tcp_read_timeouts", self.tcp_read_timeouts.to_string()),
            ("rejected_formerr", self.rejected_formerr.to_string()),
            ("rejected_notimp", self.rejected_notimp.to_string()),
            ("rejected_refused", self.rejected_refused.to_string()),
            ("dropped", self.dropped.to_string()),
            ("encode_errors", self.encode_errors.to_string()),
            ("bytes_received", self.bytes_received.to_string()),
            ("bytes_sent", self.bytes_sent.to_string()),
            (
                "latency_mean_us",
                format!("{:.1}", self.handle_latency.mean_us()),
            ),
            (
                "latency_p50_us",
                self.handle_latency.quantile_us(0.50).to_string(),
            ),
            (
                "latency_p99_us",
                self.handle_latency.quantile_us(0.99).to_string(),
            ),
            ("latency_max_us", self.handle_latency.max.to_string()),
        ]);
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_string(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// [`to_json_with`](Self::to_json_with) with no extra fields.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = ServerMetrics::new();
        m.udp_query(40);
        m.udp_response(200, false);
        m.udp_query(40);
        m.udp_response(52, true);
        m.tcp_conn_accepted();
        m.tcp_query(40);
        m.tcp_response(420);
        m.tcp_conn_refused();
        m.tcp_read_timeout();
        m.rejected_formerr();
        m.rejected_notimp();
        m.rejected_refused();
        m.dropped();
        m.encode_error();
        m.observe_handle_us(30);
        m.observe_handle_us(400);
        m.observe_handle_us(1_000_000);

        let s = m.snapshot();
        assert_eq!(s.udp_queries, 2);
        assert_eq!(s.udp_responses, 2);
        assert_eq!(s.udp_truncated, 1);
        assert_eq!(s.tcp_queries, 1);
        assert_eq!(s.tcp_responses, 1);
        assert_eq!(s.tcp_conns_accepted, 1);
        assert_eq!(s.tcp_conns_refused, 1);
        assert_eq!(s.tcp_read_timeouts, 1);
        assert_eq!(s.queries(), 3);
        assert_eq!(s.responses(), 3);
        assert_eq!(s.bytes_received, 120);
        assert_eq!(s.bytes_sent, 672);
        assert_eq!(s.handle_latency.total, 3);
        assert_eq!(s.handle_latency.max, 1_000_000);
        let render = s.render();
        assert!(
            render.contains("2 queries, 2 responses (1 truncated)"),
            "{render}"
        );
        assert!(
            render.contains("1 FORMERR, 1 NOTIMP, 1 REFUSED, 1 dropped"),
            "{render}"
        );
    }

    #[test]
    fn json_is_single_object_with_schema() {
        let m = ServerMetrics::new();
        m.udp_query(10);
        m.observe_handle_us(75);
        let s = m.snapshot();
        let json = s.to_json_with(&[("qps", "123.4".to_string())]);
        assert!(json.starts_with("{\"schema\":\"ede-server-stats/1\",\"qps\":123.4,"));
        assert!(json.contains("\"udp_queries\":1"));
        assert!(json.contains("\"latency_p50_us\":100"));
        assert!(json.ends_with('}'));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn quantiles_follow_buckets() {
        let m = ServerMetrics::new();
        for _ in 0..99 {
            m.observe_handle_us(40);
        }
        m.observe_handle_us(9_000);
        let h = m.snapshot().handle_latency;
        assert_eq!(h.quantile_us(0.50), 50);
        assert_eq!(h.quantile_us(0.99), 50);
        assert_eq!(h.quantile_us(1.0), 10_000);
        assert_eq!(UsHistogram::default().quantile_us(0.5), 0);
        assert!(h.mean_us() > 40.0);
    }
}
