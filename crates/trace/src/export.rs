//! Snapshot export hooks: where incremental aggregation snapshots go.
//!
//! The scan's streaming analytics pipeline (see `ede-scan`) merges
//! per-worker partial aggregates into a shared snapshot store at a
//! configurable cadence on the virtual clock. Each time a cadence
//! boundary is crossed, the merging worker serializes the current
//! [`StatsSnapshot`] to JSON and hands it to every registered
//! [`SnapshotSink`]. This module defines the sink contract and two
//! stock implementations; it deliberately knows nothing about the
//! snapshot *schema* — the payload is an opaque, versioned JSON
//! document (`schema_version` is part of it), so the trace crate never
//! depends on scan types.
//!
//! [`StatsSnapshot`]: https://docs.rs/ede-scan (the `stats::v1` module)

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A destination for exported aggregation snapshots.
///
/// Implementations must be cheap and non-blocking where possible: the
/// exporting thread is a scan worker, and a slow sink slows the scan.
pub trait SnapshotSink: Send + Sync {
    /// Receive one exported snapshot.
    ///
    /// `seq` increases strictly across exports from one store;
    /// `vtime_ms` is the virtual-clock stamp of the export; `json` is
    /// the full serialized snapshot document (single line, no trailing
    /// newline).
    fn export_snapshot(&self, seq: u64, vtime_ms: u64, json: &str);
}

/// One exported snapshot retained by [`MemorySnapshotSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Export sequence number (strictly increasing per store).
    pub seq: u64,
    /// Virtual-clock stamp of the export (ms since the Unix epoch).
    pub vtime_ms: u64,
    /// The serialized snapshot document.
    pub json: String,
}

/// An in-memory sink retaining every exported snapshot — for tests and
/// the `--stream-smoke` CI leg.
#[derive(Debug, Default)]
pub struct MemorySnapshotSink {
    entries: Mutex<Vec<SnapshotEntry>>,
}

impl MemorySnapshotSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every snapshot exported so far, in export order.
    pub fn entries(&self) -> Vec<SnapshotEntry> {
        self.entries.lock().expect("sink lock").clone()
    }

    /// Number of snapshots exported so far.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("sink lock").len()
    }

    /// True when nothing has been exported yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SnapshotSink for MemorySnapshotSink {
    fn export_snapshot(&self, seq: u64, vtime_ms: u64, json: &str) {
        self.entries.lock().expect("sink lock").push(SnapshotEntry {
            seq,
            vtime_ms,
            json: json.to_string(),
        });
    }
}

/// A sink appending each snapshot as one JSON line to a file — the
/// exportable-snapshots surface (`repro-scan --snapshots=FILE`).
///
/// Lines are written through a buffered writer and flushed per export,
/// so a crash mid-scan loses at most the snapshot being written.
pub struct JsonlSnapshotWriter {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSnapshotWriter {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSnapshotWriter {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl SnapshotSink for JsonlSnapshotWriter {
    fn export_snapshot(&self, _seq: u64, _vtime_ms: u64, json: &str) {
        let mut w = self.writer.lock().expect("writer lock");
        // Sequence and stamp ride inside the document itself; the file
        // is pure JSONL of snapshot documents.
        let _ = writeln!(w, "{json}");
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_retains_in_order() {
        let sink = MemorySnapshotSink::new();
        sink.export_snapshot(1, 10, "{\"a\":1}");
        sink.export_snapshot(2, 20, "{\"a\":2}");
        let entries = sink.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 1);
        assert_eq!(entries[1].json, "{\"a\":2}");
    }

    #[test]
    fn jsonl_writer_appends_lines() {
        let path = std::env::temp_dir().join(format!(
            "ede-trace-export-test-{}.jsonl",
            std::process::id()
        ));
        let w = JsonlSnapshotWriter::create(&path).expect("create");
        w.export_snapshot(1, 10, "{\"x\":1}");
        w.export_snapshot(2, 20, "{\"x\":2}");
        let body = std::fs::read_to_string(w.path()).expect("read back");
        assert_eq!(body, "{\"x\":1}\n{\"x\":2}\n");
        let _ = std::fs::remove_file(&path);
    }
}
