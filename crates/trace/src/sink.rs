//! Sinks: where stamped events go.
//!
//! The instrumented components never decide what happens to an event —
//! they hand it to a [`Tracer`], which stamps it with the virtual clock
//! and forwards it to whatever [`TraceSink`] the application attached:
//! a [`ResolutionTrace`] ring buffer for timelines, a
//! [`crate::Metrics`] registry for counters, or a [`MultiSink`] fanning
//! out to both. A disabled tracer is one `Option` check — tracing off
//! costs nothing but that branch.

use crate::event::{TimedEvent, TraceEvent};
use std::sync::{Arc, Mutex};

/// A source of virtual time. `ede-netsim`'s `SimClock` implements this;
/// the trace crate itself never reads host time, keeping traces
/// deterministic.
pub trait TraceClock: Send + Sync {
    /// Current virtual time in milliseconds since the Unix epoch.
    fn trace_now_millis(&self) -> u64;
}

/// A consumer of stamped trace events. Implementations must tolerate
/// concurrent calls: a scan emits from many worker threads.
pub trait TraceSink: Send + Sync {
    /// Record one stamped event.
    fn record(&self, at_ms: u64, event: &TraceEvent);

    /// Whether this sink reads the human-facing detail strings on
    /// events (`qname`, `target`, `finding`, …). Counter-only sinks
    /// like [`crate::Metrics`] return `false`, letting instrumented
    /// code skip one string allocation per event on hot paths and
    /// send an empty string instead. Defaults to `true`: any sink
    /// that renders events must see the real text.
    fn wants_query_detail(&self) -> bool {
        true
    }
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    clock: Arc<dyn TraceClock>,
    // Cached at construction: consulted once per query on the scan
    // fast path, so it must not be a virtual call each time.
    wants_detail: bool,
}

/// A cheap, cloneable handle bundling a sink with the clock that stamps
/// its events. The default tracer is disabled and drops everything.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerInner>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Tracer")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

impl Tracer {
    /// A tracer forwarding to `sink`, stamping with `clock`.
    pub fn new(sink: Arc<dyn TraceSink>, clock: Arc<dyn TraceClock>) -> Self {
        let wants_detail = sink.wants_query_detail();
        Tracer(Some(Arc::new(TracerInner {
            sink,
            clock,
            wants_detail,
        })))
    }

    /// The disabled tracer (drops every event).
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// True when events actually go somewhere. Instrumented code may use
    /// this to skip building expensive event payloads.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// True when the attached sink reads detail strings (see
    /// [`TraceSink::wants_query_detail`]). Disabled tracers want
    /// nothing. Emitters may pass empty strings for `qname`-style
    /// fields when this is `false`.
    pub fn wants_query_detail(&self) -> bool {
        self.0.as_ref().is_some_and(|i| i.wants_detail)
    }

    /// Stamp and forward one event.
    pub fn emit(&self, event: TraceEvent) {
        if let Some(inner) = &self.0 {
            inner.sink.record(inner.clock.trace_now_millis(), &event);
        }
    }

    /// The tracer's current virtual time, if enabled.
    pub fn now_millis(&self) -> Option<u64> {
        self.0.as_ref().map(|i| i.clock.trace_now_millis())
    }
}

/// A bounded in-memory trace: the newest `capacity` events of one (or
/// more) resolutions, in arrival order. When full, the oldest events are
/// dropped and counted, never silently.
pub struct ResolutionTrace {
    events: Mutex<TraceState>,
    capacity: usize,
}

struct TraceState {
    ring: std::collections::VecDeque<TimedEvent>,
    dropped: u64,
}

impl ResolutionTrace {
    /// An empty trace retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ResolutionTrace {
            events: Mutex::new(TraceState {
                ring: std::collections::VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events
            .lock()
            .expect("no poisoning")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("no poisoning").ring.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.events.lock().expect("no poisoning").dropped
    }

    /// Discard everything (reuse between resolutions).
    pub fn clear(&self) {
        let mut st = self.events.lock().expect("no poisoning");
        st.ring.clear();
        st.dropped = 0;
    }

    /// Render the retained events as a `dig +trace`-style timeline:
    /// one line per event, stamped with milliseconds relative to the
    /// first retained event.
    pub fn render_timeline(&self) -> String {
        let events = self.events();
        let mut out = String::new();
        let t0 = events.first().map(|e| e.at_ms).unwrap_or(0);
        for e in &events {
            out.push_str(&format!(
                "  +{:>6} ms  {}\n",
                e.at_ms - t0,
                e.event.render()
            ));
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("  ({dropped} earlier events dropped)\n"));
        }
        out
    }

    /// Serialize the retained events as JSON lines (one event per line;
    /// see [`crate::json`] for the schema).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&crate::json::event_to_json(&e));
            out.push('\n');
        }
        out
    }
}

impl TraceSink for ResolutionTrace {
    fn record(&self, at_ms: u64, event: &TraceEvent) {
        let mut st = self.events.lock().expect("no poisoning");
        if st.ring.len() >= self.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
        st.ring.push_back(TimedEvent {
            at_ms,
            event: event.clone(),
        });
    }
}

/// Fan one event stream out to several sinks (e.g. a ring buffer *and*
/// a metrics registry).
pub struct MultiSink(Vec<Arc<dyn TraceSink>>);

impl MultiSink {
    /// A sink forwarding to every element of `sinks`, in order.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        MultiSink(sinks)
    }
}

impl TraceSink for MultiSink {
    fn record(&self, at_ms: u64, event: &TraceEvent) {
        for s in &self.0 {
            s.record(at_ms, event);
        }
    }

    fn wants_query_detail(&self) -> bool {
        self.0.iter().any(|s| s.wants_query_detail())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct FixedClock(u64);
    impl TraceClock for FixedClock {
        fn trace_now_millis(&self) -> u64 {
            self.0
        }
    }

    fn ev(n: u16) -> TraceEvent {
        TraceEvent::ResolutionStarted {
            qname: format!("q{n}"),
            qtype: n,
        }
    }

    #[test]
    fn disabled_tracer_drops() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(ev(1)); // must not panic
        assert_eq!(t.now_millis(), None);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let trace = Arc::new(ResolutionTrace::new(3));
        let tracer = Tracer::new(trace.clone(), Arc::new(FixedClock(100)));
        assert!(tracer.enabled());
        for n in 0..5 {
            tracer.emit(ev(n));
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 2);
        let events = trace.events();
        assert_eq!(events[0].event, ev(2));
        assert_eq!(events[0].at_ms, 100);
        assert!(trace.render_timeline().contains("2 earlier events dropped"));
        trace.clear();
        assert!(trace.is_empty());
    }

    #[test]
    fn multi_sink_fans_out() {
        struct Counter(AtomicU64);
        impl TraceSink for Counter {
            fn record(&self, _at: u64, _ev: &TraceEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let a = Arc::new(Counter(AtomicU64::new(0)));
        let b = Arc::new(ResolutionTrace::new(8));
        let multi = Arc::new(MultiSink::new(vec![a.clone(), b.clone()]));
        let tracer = Tracer::new(multi, Arc::new(FixedClock(5)));
        tracer.emit(ev(9));
        assert_eq!(a.0.load(Ordering::Relaxed), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn timeline_is_relative_to_first_event() {
        let trace = Arc::new(ResolutionTrace::new(8));
        trace.record(1000, &ev(0));
        trace.record(1020, &ev(1));
        let tl = trace.render_timeline();
        assert!(tl.contains("+     0 ms"), "{tl}");
        assert!(tl.contains("+    20 ms"), "{tl}");
    }
}
