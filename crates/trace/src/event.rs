//! The typed trace event model.
//!
//! Every event is a protocol-visible fact about one step of a
//! resolution, stamped (by [`crate::Tracer`]) with the virtual clock of
//! the simulation that produced it. Events deliberately carry plain
//! `String`s and std types only, so the crate stays dependency-free and
//! the events serialize trivially (see [`crate::json`]).

use std::fmt;
use std::net::IpAddr;

/// Which cache outcome a probe produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheOutcome {
    /// A fresh (within-TTL) entry answered the query.
    Hit,
    /// Nothing usable was cached; a live resolution follows.
    Miss,
    /// An expired entry was served under RFC 8767 serve-stale.
    StaleServed,
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheOutcome::Hit => write!(f, "hit"),
            CacheOutcome::Miss => write!(f, "miss"),
            CacheOutcome::StaleServed => write!(f, "stale-served"),
        }
    }
}

/// One structured trace event.
///
/// The variants cover the transport (`QuerySent`, `ResponseReceived`,
/// `Timeout`, `Retry`), the iterative walk (`Referral`), the cache
/// (`CacheProbe`), DNSSEC validation (`ValidationStep`), diagnosis
/// (`FindingRecorded`), EDE emission (`EdeEmitted`), the authoritative
/// side (`AuthorityAnswer`), resolution bracketing
/// (`ResolutionStarted` / `ResolutionFinished`), and the event-driven
/// task scheduler (`TaskSpawned` / `TaskCompleted`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A client-side resolution began.
    ResolutionStarted {
        /// The queried name, dotted.
        qname: String,
        /// The queried type, numeric.
        qtype: u16,
    },
    /// A query datagram left for an upstream server.
    QuerySent {
        /// Destination server address.
        dst: IpAddr,
        /// Queried name, dotted.
        qname: String,
        /// Queried type, numeric.
        qtype: u16,
        /// DNS message ID.
        id: u16,
    },
    /// A response datagram arrived.
    ResponseReceived {
        /// The server that answered.
        src: IpAddr,
        /// Response RCODE, numeric (with EDNS extension bits).
        rcode: u16,
        /// Number of answer records.
        answers: usize,
        /// Transport latency charged by the simulation, in milliseconds.
        latency_ms: u64,
    },
    /// No response arrived: silent drop, loss, or unroutable glue.
    Timeout {
        /// The unresponsive destination.
        dst: IpAddr,
        /// Queried name, dotted.
        qname: String,
        /// True when the destination is a special-purpose (unroutable)
        /// address rather than a dead host.
        unroutable: bool,
    },
    /// The resolver moved on to another server of the same zone after a
    /// failure.
    Retry {
        /// 1-based index of the retry (first fallback = 1).
        attempt: usize,
        /// The server being tried next.
        next: IpAddr,
    },
    /// A bounded hedged retry: after the whole server set failed, the
    /// retry policy granted an extra round over the (re-ordered) set.
    Hedge {
        /// 1-based index of the overall attempt that this hedge issues.
        attempt: usize,
        /// The server being hedged to.
        next: IpAddr,
    },
    /// A truncated (TC=1) UDP reply made the resolver re-ask the same
    /// server over the stream (TCP-analogue) channel.
    TcFallback {
        /// The server being re-queried over the stream channel.
        dst: IpAddr,
        /// Queried name, dotted.
        qname: String,
        /// Encoded size of the truncated reply's full form, when known
        /// (0 when only the TC bit is visible).
        size: usize,
        /// The negotiated UDP payload limit the reply exceeded.
        limit: u16,
    },
    /// The simulated network's fault plan fired on one exchange
    /// (emitted from `ede-netsim`, when a tracer is attached).
    FaultInjected {
        /// Which fault fired: `"loss"`, `"burst"`, `"flap"`,
        /// `"blackhole"`, `"corrupt"` or `"spike"`.
        kind: String,
        /// The destination of the affected exchange.
        dst: IpAddr,
    },
    /// A referral moved resolution down one zone cut.
    Referral {
        /// The delegated zone, dotted.
        zone: String,
        /// Number of NS names in the referral.
        ns_count: usize,
        /// True when the delegation carried a DS RRset (stays in the
        /// chain of trust).
        signed: bool,
    },
    /// The resolver probed its answer cache.
    CacheProbe {
        /// Queried name, dotted.
        qname: String,
        /// Queried type, numeric.
        qtype: u16,
        /// What the probe produced.
        outcome: CacheOutcome,
    },
    /// A cache store removed entries: TTL-wheel expiry, budget (CLOCK)
    /// eviction, or both. Emitted once per store operation that removed
    /// anything, so an unbounded cache under a standing clock emits
    /// none of these.
    CacheEvicted {
        /// Entries removed because their TTL + stale window had lapsed.
        expired: u64,
        /// Entries removed by the entry/byte budget's CLOCK sweep.
        evicted: u64,
        /// Live entries remaining in the store after the removal.
        occupancy: u64,
    },
    /// A negative answer was synthesized from DNSSEC-validated
    /// NSEC/NSEC3 ranges already in cache (RFC 8198 aggressive use),
    /// skipping the authority round-trip entirely.
    DenialSynthesized {
        /// Queried name, dotted.
        qname: String,
        /// True for a synthesized NXDOMAIN, false for NODATA.
        nxdomain: bool,
        /// Remaining validity of the covering proof, seconds.
        ttl: u32,
    },
    /// One DNSSEC validation step ran.
    ValidationStep {
        /// What was validated (e.g. `"DNSKEY example.com"`,
        /// `"RRset www.example.com/A"`, `"denial example.com NXDOMAIN"`).
        target: String,
        /// True when the step completed without recording any finding.
        ok: bool,
    },
    /// The diagnosis recorded a structured finding.
    FindingRecorded {
        /// Compact `Debug` rendering of the
        /// `ede_resolver::diagnosis::Finding` variant.
        finding: String,
    },
    /// The vendor profile attached one EDE entry to the response.
    EdeEmitted {
        /// The emitting vendor profile's name.
        vendor: String,
        /// RFC 8914 INFO-CODE.
        code: u16,
        /// EXTRA-TEXT, possibly empty.
        extra_text: String,
    },
    /// An authoritative server answered a query (emitted from
    /// `ede-authority`, when a tracer is attached to the server).
    AuthorityAnswer {
        /// The zone that answered (dotted), or `"-"` when no zone
        /// matched.
        zone: String,
        /// Response RCODE, numeric.
        rcode: u16,
    },
    /// The client-side resolution completed.
    ResolutionFinished {
        /// Final RCODE, numeric.
        rcode: u16,
        /// Number of EDE entries attached.
        ede_count: usize,
        /// Virtual-clock duration of the whole resolution, ms.
        duration_ms: u64,
    },
    /// A task pool admitted one resolution into its in-flight window
    /// (emitted by `ede-resolver`'s `ResolutionPool`; the single-task
    /// driver behind the blocking API stays silent).
    TaskSpawned {
        /// Pool-scoped task id, increasing in spawn order.
        task: u64,
        /// In-flight tasks after this spawn — the concurrency gauge.
        in_flight: usize,
        /// Completion-queue depth at spawn time — the ready-queue gauge.
        queued: usize,
    },
    /// A pooled resolution task ran to completion.
    TaskCompleted {
        /// Pool-scoped task id (matches the `TaskSpawned` event).
        task: u64,
        /// In-flight tasks after this completion.
        in_flight: usize,
        /// Completion-queue depth after this completion.
        queued: usize,
    },
}

impl TraceEvent {
    /// Stable machine-readable kind tag (used by the JSONL encoding and
    /// the golden-file tests).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ResolutionStarted { .. } => "resolution_started",
            TraceEvent::QuerySent { .. } => "query_sent",
            TraceEvent::ResponseReceived { .. } => "response_received",
            TraceEvent::Timeout { .. } => "timeout",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::Hedge { .. } => "hedge",
            TraceEvent::TcFallback { .. } => "tc_fallback",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::Referral { .. } => "referral",
            TraceEvent::CacheProbe { .. } => "cache_probe",
            TraceEvent::CacheEvicted { .. } => "cache_evicted",
            TraceEvent::DenialSynthesized { .. } => "denial_synthesized",
            TraceEvent::ValidationStep { .. } => "validation_step",
            TraceEvent::FindingRecorded { .. } => "finding_recorded",
            TraceEvent::EdeEmitted { .. } => "ede_emitted",
            TraceEvent::AuthorityAnswer { .. } => "authority_answer",
            TraceEvent::ResolutionFinished { .. } => "resolution_finished",
            TraceEvent::TaskSpawned { .. } => "task_spawned",
            TraceEvent::TaskCompleted { .. } => "task_completed",
        }
    }

    /// One-line human rendering (the `troubleshoot --trace` timeline
    /// body and the golden-file format).
    pub fn render(&self) -> String {
        match self {
            TraceEvent::ResolutionStarted { qname, qtype } => {
                format!("resolve {qname} type{qtype}")
            }
            TraceEvent::QuerySent {
                dst, qname, qtype, ..
            } => {
                format!("-> {dst} {qname} type{qtype}")
            }
            TraceEvent::ResponseReceived {
                src,
                rcode,
                answers,
                latency_ms,
            } => {
                format!("<- {src} rcode={rcode} answers={answers} ({latency_ms} ms)")
            }
            TraceEvent::Timeout {
                dst,
                qname,
                unroutable,
            } => {
                let why = if *unroutable { "unroutable" } else { "timeout" };
                format!("xx {dst} {why} ({qname})")
            }
            TraceEvent::Retry { attempt, next } => {
                format!("retry #{attempt} -> {next}")
            }
            TraceEvent::Hedge { attempt, next } => {
                format!("hedge #{attempt} -> {next}")
            }
            TraceEvent::TcFallback {
                dst,
                qname,
                size,
                limit,
            } => {
                if *size > 0 {
                    format!("tc-fallback -> {dst} {qname} ({size} B > {limit} B)")
                } else {
                    format!("tc-fallback -> {dst} {qname} (limit {limit} B)")
                }
            }
            TraceEvent::FaultInjected { kind, dst } => {
                format!("fault {kind} @ {dst}")
            }
            TraceEvent::Referral {
                zone,
                ns_count,
                signed,
            } => {
                let chain = if *signed { "signed" } else { "unsigned" };
                format!("referral to {zone} ({ns_count} NS, {chain})")
            }
            TraceEvent::CacheProbe {
                qname,
                qtype,
                outcome,
            } => {
                format!("cache {outcome} {qname} type{qtype}")
            }
            TraceEvent::CacheEvicted {
                expired,
                evicted,
                occupancy,
            } => {
                format!("cache evict {evicted} (expired {expired}), {occupancy} live")
            }
            TraceEvent::DenialSynthesized {
                qname,
                nxdomain,
                ttl,
            } => {
                let kind = if *nxdomain { "NXDOMAIN" } else { "NODATA" };
                format!("synthesize {kind} {qname} (ttl {ttl})")
            }
            TraceEvent::ValidationStep { target, ok } => {
                let mark = if *ok { "ok" } else { "FAILED" };
                format!("validate {target}: {mark}")
            }
            TraceEvent::FindingRecorded { finding } => format!("finding {finding}"),
            TraceEvent::EdeEmitted {
                vendor,
                code,
                extra_text,
            } => {
                if extra_text.is_empty() {
                    format!("ede {vendor} code={code}")
                } else {
                    format!("ede {vendor} code={code} {extra_text:?}")
                }
            }
            TraceEvent::AuthorityAnswer { zone, rcode } => {
                format!("authority {zone} rcode={rcode}")
            }
            TraceEvent::ResolutionFinished {
                rcode,
                ede_count,
                duration_ms,
            } => {
                format!("done rcode={rcode} ede={ede_count} ({duration_ms} ms)")
            }
            TraceEvent::TaskSpawned {
                task,
                in_flight,
                queued,
            } => {
                format!("task {task} spawned (in-flight {in_flight}, queued {queued})")
            }
            TraceEvent::TaskCompleted {
                task,
                in_flight,
                queued,
            } => {
                format!("task {task} completed (in-flight {in_flight}, queued {queued})")
            }
        }
    }
}

/// A trace event stamped with the virtual clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Virtual-clock timestamp, milliseconds since the Unix epoch (the
    /// netsim clock starts at the paper's measurement epoch).
    pub at_ms: u64,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique() {
        let events = [
            TraceEvent::ResolutionStarted {
                qname: "a".into(),
                qtype: 1,
            },
            TraceEvent::QuerySent {
                dst: "192.0.2.1".parse().unwrap(),
                qname: "a".into(),
                qtype: 1,
                id: 7,
            },
            TraceEvent::ResponseReceived {
                src: "192.0.2.1".parse().unwrap(),
                rcode: 0,
                answers: 1,
                latency_ms: 20,
            },
            TraceEvent::Timeout {
                dst: "192.0.2.1".parse().unwrap(),
                qname: "a".into(),
                unroutable: false,
            },
            TraceEvent::Retry {
                attempt: 1,
                next: "192.0.2.2".parse().unwrap(),
            },
            TraceEvent::Hedge {
                attempt: 5,
                next: "192.0.2.3".parse().unwrap(),
            },
            TraceEvent::TcFallback {
                dst: "192.0.2.1".parse().unwrap(),
                qname: "a".into(),
                size: 1452,
                limit: 1232,
            },
            TraceEvent::FaultInjected {
                kind: "loss".into(),
                dst: "192.0.2.1".parse().unwrap(),
            },
            TraceEvent::Referral {
                zone: "com".into(),
                ns_count: 2,
                signed: true,
            },
            TraceEvent::CacheProbe {
                qname: "a".into(),
                qtype: 1,
                outcome: CacheOutcome::Miss,
            },
            TraceEvent::CacheEvicted {
                expired: 2,
                evicted: 1,
                occupancy: 97,
            },
            TraceEvent::DenialSynthesized {
                qname: "a".into(),
                nxdomain: true,
                ttl: 60,
            },
            TraceEvent::ValidationStep {
                target: "DNSKEY com".into(),
                ok: true,
            },
            TraceEvent::FindingRecorded {
                finding: "CachedError".into(),
            },
            TraceEvent::EdeEmitted {
                vendor: "cf".into(),
                code: 7,
                extra_text: String::new(),
            },
            TraceEvent::AuthorityAnswer {
                zone: "com".into(),
                rcode: 0,
            },
            TraceEvent::ResolutionFinished {
                rcode: 2,
                ede_count: 1,
                duration_ms: 40,
            },
            TraceEvent::TaskSpawned {
                task: 12,
                in_flight: 3,
                queued: 2,
            },
            TraceEvent::TaskCompleted {
                task: 12,
                in_flight: 2,
                queued: 1,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
        for e in &events {
            assert!(!e.render().is_empty());
        }
    }
}
