//! Hand-rolled JSON lines encoding for offline trace analysis.
//!
//! One event per line, schema:
//!
//! ```text
//! {"at_ms":<u64>,"kind":"<kind tag>",...variant fields...}
//! ```
//!
//! Field names match the Rust field names of [`TraceEvent`]; addresses
//! are dotted/colon strings. The encoder is dependency-free (no serde)
//! and escapes strings per RFC 8259.

use crate::event::{TimedEvent, TraceEvent};

/// Escape a string for inclusion in a JSON document (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encode one stamped event as a single JSON object (no trailing
/// newline).
pub fn event_to_json(e: &TimedEvent) -> String {
    let mut fields: Vec<(&str, String)> = vec![
        ("at_ms", e.at_ms.to_string()),
        ("kind", json_string(e.event.kind())),
    ];
    match &e.event {
        TraceEvent::ResolutionStarted { qname, qtype } => {
            fields.push(("qname", json_string(qname)));
            fields.push(("qtype", qtype.to_string()));
        }
        TraceEvent::QuerySent {
            dst,
            qname,
            qtype,
            id,
        } => {
            fields.push(("dst", json_string(&dst.to_string())));
            fields.push(("qname", json_string(qname)));
            fields.push(("qtype", qtype.to_string()));
            fields.push(("id", id.to_string()));
        }
        TraceEvent::ResponseReceived {
            src,
            rcode,
            answers,
            latency_ms,
        } => {
            fields.push(("src", json_string(&src.to_string())));
            fields.push(("rcode", rcode.to_string()));
            fields.push(("answers", answers.to_string()));
            fields.push(("latency_ms", latency_ms.to_string()));
        }
        TraceEvent::Timeout {
            dst,
            qname,
            unroutable,
        } => {
            fields.push(("dst", json_string(&dst.to_string())));
            fields.push(("qname", json_string(qname)));
            fields.push(("unroutable", unroutable.to_string()));
        }
        TraceEvent::Retry { attempt, next } => {
            fields.push(("attempt", attempt.to_string()));
            fields.push(("next", json_string(&next.to_string())));
        }
        TraceEvent::Hedge { attempt, next } => {
            fields.push(("attempt", attempt.to_string()));
            fields.push(("next", json_string(&next.to_string())));
        }
        TraceEvent::TcFallback {
            dst,
            qname,
            size,
            limit,
        } => {
            fields.push(("dst", json_string(&dst.to_string())));
            fields.push(("qname", json_string(qname)));
            fields.push(("size", size.to_string()));
            fields.push(("limit", limit.to_string()));
        }
        TraceEvent::FaultInjected { kind: fault, dst } => {
            fields.push(("fault", json_string(fault)));
            fields.push(("dst", json_string(&dst.to_string())));
        }
        TraceEvent::Referral {
            zone,
            ns_count,
            signed,
        } => {
            fields.push(("zone", json_string(zone)));
            fields.push(("ns_count", ns_count.to_string()));
            fields.push(("signed", signed.to_string()));
        }
        TraceEvent::CacheProbe {
            qname,
            qtype,
            outcome,
        } => {
            fields.push(("qname", json_string(qname)));
            fields.push(("qtype", qtype.to_string()));
            fields.push(("outcome", json_string(&outcome.to_string())));
        }
        TraceEvent::CacheEvicted {
            expired,
            evicted,
            occupancy,
        } => {
            fields.push(("expired", expired.to_string()));
            fields.push(("evicted", evicted.to_string()));
            fields.push(("occupancy", occupancy.to_string()));
        }
        TraceEvent::DenialSynthesized {
            qname,
            nxdomain,
            ttl,
        } => {
            fields.push(("qname", json_string(qname)));
            fields.push(("nxdomain", nxdomain.to_string()));
            fields.push(("ttl", ttl.to_string()));
        }
        TraceEvent::ValidationStep { target, ok } => {
            fields.push(("target", json_string(target)));
            fields.push(("ok", ok.to_string()));
        }
        TraceEvent::FindingRecorded { finding } => {
            fields.push(("finding", json_string(finding)));
        }
        TraceEvent::EdeEmitted {
            vendor,
            code,
            extra_text,
        } => {
            fields.push(("vendor", json_string(vendor)));
            fields.push(("code", code.to_string()));
            fields.push(("extra_text", json_string(extra_text)));
        }
        TraceEvent::AuthorityAnswer { zone, rcode } => {
            fields.push(("zone", json_string(zone)));
            fields.push(("rcode", rcode.to_string()));
        }
        TraceEvent::ResolutionFinished {
            rcode,
            ede_count,
            duration_ms,
        } => {
            fields.push(("rcode", rcode.to_string()));
            fields.push(("ede_count", ede_count.to_string()));
            fields.push(("duration_ms", duration_ms.to_string()));
        }
        TraceEvent::TaskSpawned {
            task,
            in_flight,
            queued,
        }
        | TraceEvent::TaskCompleted {
            task,
            in_flight,
            queued,
        } => {
            fields.push(("task", task.to_string()));
            fields.push(("in_flight", in_flight.to_string()));
            fields.push(("queued", queued.to_string()));
        }
    }
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}:{v}", json_string(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_hostile_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn encodes_every_variant_as_object() {
        let samples = [
            TraceEvent::ResolutionStarted {
                qname: "a.com".into(),
                qtype: 1,
            },
            TraceEvent::QuerySent {
                dst: "192.0.2.1".parse().unwrap(),
                qname: "a.com".into(),
                qtype: 1,
                id: 9,
            },
            TraceEvent::ResponseReceived {
                src: "192.0.2.1".parse().unwrap(),
                rcode: 0,
                answers: 2,
                latency_ms: 20,
            },
            TraceEvent::Timeout {
                dst: "10.0.0.1".parse().unwrap(),
                qname: "a.com".into(),
                unroutable: true,
            },
            TraceEvent::Retry {
                attempt: 2,
                next: "192.0.2.2".parse().unwrap(),
            },
            TraceEvent::Hedge {
                attempt: 4,
                next: "192.0.2.3".parse().unwrap(),
            },
            TraceEvent::TcFallback {
                dst: "192.0.2.1".parse().unwrap(),
                qname: "a.com".into(),
                size: 1452,
                limit: 1232,
            },
            TraceEvent::FaultInjected {
                kind: "corrupt".into(),
                dst: "192.0.2.1".parse().unwrap(),
            },
            TraceEvent::Referral {
                zone: "com".into(),
                ns_count: 1,
                signed: false,
            },
            TraceEvent::CacheProbe {
                qname: "a.com".into(),
                qtype: 1,
                outcome: crate::CacheOutcome::StaleServed,
            },
            TraceEvent::CacheEvicted {
                expired: 3,
                evicted: 0,
                occupancy: 61,
            },
            TraceEvent::DenialSynthesized {
                qname: "a.com".into(),
                nxdomain: false,
                ttl: 42,
            },
            TraceEvent::ValidationStep {
                target: "DNSKEY \"com\"".into(),
                ok: true,
            },
            TraceEvent::FindingRecorded {
                finding: "CachedError".into(),
            },
            TraceEvent::EdeEmitted {
                vendor: "BIND 9.19.9".into(),
                code: 7,
                extra_text: "x".into(),
            },
            TraceEvent::AuthorityAnswer {
                zone: "com".into(),
                rcode: 5,
            },
            TraceEvent::ResolutionFinished {
                rcode: 2,
                ede_count: 1,
                duration_ms: 0,
            },
            TraceEvent::TaskSpawned {
                task: 3,
                in_flight: 2,
                queued: 1,
            },
            TraceEvent::TaskCompleted {
                task: 3,
                in_flight: 1,
                queued: 0,
            },
        ];
        for ev in samples {
            let line = event_to_json(&TimedEvent {
                at_ms: 7,
                event: ev.clone(),
            });
            assert!(line.starts_with("{\"at_ms\":7,\"kind\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(
                line.contains(&format!("\"kind\":\"{}\"", ev.kind())),
                "{line}"
            );
        }
    }
}
