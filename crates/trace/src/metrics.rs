//! The metrics registry: atomic counters and latency histograms fed by
//! the trace event stream.
//!
//! [`Metrics`] implements [`TraceSink`], so the same instrumentation
//! points that produce timelines also drive the counters — attach it to
//! a network (or fan out with [`crate::MultiSink`]) and every
//! `QuerySent` bumps `queries_sent`, every `CacheProbe` feeds the hit
//! ratio, and so on. Counters are lock-free atomics; only the per-vendor
//! EDE map and the histograms take a short mutex.

use crate::event::{CacheOutcome, TraceEvent};
use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Histogram bucket upper bounds (milliseconds), chosen around the
/// simulation's RTT (20 ms) and timeout (2 000 ms) defaults.
pub const LATENCY_BUCKETS_MS: [u64; 8] = [1, 5, 20, 50, 100, 500, 2_000, 10_000];

/// A fixed-bucket latency histogram (upper bounds in
/// [`LATENCY_BUCKETS_MS`], plus an overflow bucket).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts; `counts[i]` holds observations
    /// `<= LATENCY_BUCKETS_MS[i]`, the final slot holds the overflow.
    pub counts: [u64; LATENCY_BUCKETS_MS.len() + 1],
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values (for the mean).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Histogram {
    /// Mean observed value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket containing
    /// the `q`-quantile observation (`q` in `[0, 1]`).
    pub fn quantile_ms(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return LATENCY_BUCKETS_MS.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }
}

/// The live side of a [`Histogram`]: per-bucket atomic counters, so the
/// per-response record path never takes a lock. A scan's worker pool
/// observes a latency for every delivered query *and* every finished
/// resolution — a mutex here was a global serialization point.
#[derive(Debug, Default)]
struct AtomicHistogram {
    counts: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn observe(&self, value_ms: u64) {
        let idx = LATENCY_BUCKETS_MS
            .iter()
            .position(|&ub| value_ms <= ub)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.counts[idx].fetch_add(1, Relaxed);
        self.total.fetch_add(1, Relaxed);
        self.sum.fetch_add(value_ms, Relaxed);
        self.max.fetch_max(value_ms, Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        Histogram {
            counts: std::array::from_fn(|i| self.counts[i].load(Relaxed)),
            total: self.total.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// The live registry. Cheap to share (`Arc<Metrics>`); attach as a
/// [`TraceSink`] and read with [`Metrics::snapshot`].
#[derive(Debug, Default)]
pub struct Metrics {
    queries_sent: AtomicU64,
    responses_received: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    tc_fallbacks: AtomicU64,
    faults_injected: AtomicU64,
    referrals: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    stale_served: AtomicU64,
    cache_expired: AtomicU64,
    cache_evictions: AtomicU64,
    cache_occupancy_peak: AtomicU64,
    denials_synthesized_nxdomain: AtomicU64,
    denials_synthesized_nodata: AtomicU64,
    validation_steps: AtomicU64,
    validation_failures: AtomicU64,
    findings: AtomicU64,
    authority_answers: AtomicU64,
    resolutions: AtomicU64,
    resolutions_noerror: AtomicU64,
    resolutions_nxdomain: AtomicU64,
    resolutions_servfail: AtomicU64,
    resolutions_other: AtomicU64,
    ede_entries: AtomicU64,
    /// (vendor, INFO-CODE) → emission count. EDE emission is rare
    /// relative to queries (error domains only), so a mutex is fine
    /// here.
    ede_by_vendor: Mutex<BTreeMap<(String, u16), u64>>,
    query_latency: AtomicHistogram,
    resolution_duration: AtomicHistogram,
    tasks_spawned: AtomicU64,
    tasks_completed: AtomicU64,
    inflight_tasks_peak: AtomicU64,
    ready_queue_peak: AtomicU64,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries_sent: self.queries_sent.load(Relaxed),
            responses_received: self.responses_received.load(Relaxed),
            timeouts: self.timeouts.load(Relaxed),
            retries: self.retries.load(Relaxed),
            hedges: self.hedges.load(Relaxed),
            tc_fallbacks: self.tc_fallbacks.load(Relaxed),
            faults_injected: self.faults_injected.load(Relaxed),
            referrals: self.referrals.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            stale_served: self.stale_served.load(Relaxed),
            cache_expired: self.cache_expired.load(Relaxed),
            cache_evictions: self.cache_evictions.load(Relaxed),
            cache_occupancy_peak: self.cache_occupancy_peak.load(Relaxed),
            denials_synthesized_nxdomain: self.denials_synthesized_nxdomain.load(Relaxed),
            denials_synthesized_nodata: self.denials_synthesized_nodata.load(Relaxed),
            validation_steps: self.validation_steps.load(Relaxed),
            validation_failures: self.validation_failures.load(Relaxed),
            findings: self.findings.load(Relaxed),
            authority_answers: self.authority_answers.load(Relaxed),
            resolutions: self.resolutions.load(Relaxed),
            resolutions_noerror: self.resolutions_noerror.load(Relaxed),
            resolutions_nxdomain: self.resolutions_nxdomain.load(Relaxed),
            resolutions_servfail: self.resolutions_servfail.load(Relaxed),
            resolutions_other: self.resolutions_other.load(Relaxed),
            ede_entries: self.ede_entries.load(Relaxed),
            ede_by_vendor: self.ede_by_vendor.lock().expect("no poisoning").clone(),
            query_latency: self.query_latency.snapshot(),
            resolution_duration: self.resolution_duration.snapshot(),
            tasks_spawned: self.tasks_spawned.load(Relaxed),
            tasks_completed: self.tasks_completed.load(Relaxed),
            inflight_tasks_peak: self.inflight_tasks_peak.load(Relaxed),
            ready_queue_peak: self.ready_queue_peak.load(Relaxed),
        }
    }
}

impl TraceSink for Metrics {
    // Counters never read qname/target/finding strings — only event
    // kinds and numeric fields — so emitters may skip building them.
    fn wants_query_detail(&self) -> bool {
        false
    }

    fn record(&self, _at_ms: u64, event: &TraceEvent) {
        match event {
            TraceEvent::ResolutionStarted { .. } => {}
            TraceEvent::QuerySent { .. } => {
                self.queries_sent.fetch_add(1, Relaxed);
            }
            TraceEvent::ResponseReceived { latency_ms, .. } => {
                self.responses_received.fetch_add(1, Relaxed);
                self.query_latency.observe(*latency_ms);
            }
            TraceEvent::Timeout { .. } => {
                self.timeouts.fetch_add(1, Relaxed);
            }
            TraceEvent::Retry { .. } => {
                self.retries.fetch_add(1, Relaxed);
            }
            TraceEvent::Hedge { .. } => {
                self.hedges.fetch_add(1, Relaxed);
            }
            TraceEvent::TcFallback { .. } => {
                self.tc_fallbacks.fetch_add(1, Relaxed);
            }
            TraceEvent::FaultInjected { .. } => {
                self.faults_injected.fetch_add(1, Relaxed);
            }
            TraceEvent::Referral { .. } => {
                self.referrals.fetch_add(1, Relaxed);
            }
            TraceEvent::CacheProbe { outcome, .. } => {
                match outcome {
                    CacheOutcome::Hit => &self.cache_hits,
                    CacheOutcome::Miss => &self.cache_misses,
                    CacheOutcome::StaleServed => &self.stale_served,
                }
                .fetch_add(1, Relaxed);
            }
            TraceEvent::CacheEvicted {
                expired,
                evicted,
                occupancy,
            } => {
                self.cache_expired.fetch_add(*expired, Relaxed);
                self.cache_evictions.fetch_add(*evicted, Relaxed);
                self.cache_occupancy_peak.fetch_max(*occupancy, Relaxed);
            }
            TraceEvent::DenialSynthesized { nxdomain, .. } => {
                if *nxdomain {
                    &self.denials_synthesized_nxdomain
                } else {
                    &self.denials_synthesized_nodata
                }
                .fetch_add(1, Relaxed);
            }
            TraceEvent::ValidationStep { ok, .. } => {
                self.validation_steps.fetch_add(1, Relaxed);
                if !ok {
                    self.validation_failures.fetch_add(1, Relaxed);
                }
            }
            TraceEvent::FindingRecorded { .. } => {
                self.findings.fetch_add(1, Relaxed);
            }
            TraceEvent::EdeEmitted { vendor, code, .. } => {
                self.ede_entries.fetch_add(1, Relaxed);
                *self
                    .ede_by_vendor
                    .lock()
                    .expect("no poisoning")
                    .entry((vendor.clone(), *code))
                    .or_insert(0) += 1;
            }
            TraceEvent::AuthorityAnswer { .. } => {
                self.authority_answers.fetch_add(1, Relaxed);
            }
            TraceEvent::ResolutionFinished {
                rcode, duration_ms, ..
            } => {
                self.resolutions.fetch_add(1, Relaxed);
                match rcode {
                    0 => self.resolutions_noerror.fetch_add(1, Relaxed),
                    3 => self.resolutions_nxdomain.fetch_add(1, Relaxed),
                    2 => self.resolutions_servfail.fetch_add(1, Relaxed),
                    _ => self.resolutions_other.fetch_add(1, Relaxed),
                };
                self.resolution_duration.observe(*duration_ms);
            }
            TraceEvent::TaskSpawned {
                in_flight, queued, ..
            } => {
                self.tasks_spawned.fetch_add(1, Relaxed);
                self.inflight_tasks_peak
                    .fetch_max(*in_flight as u64, Relaxed);
                self.ready_queue_peak.fetch_max(*queued as u64, Relaxed);
            }
            TraceEvent::TaskCompleted {
                in_flight, queued, ..
            } => {
                self.tasks_completed.fetch_add(1, Relaxed);
                self.inflight_tasks_peak
                    .fetch_max(*in_flight as u64, Relaxed);
                self.ready_queue_peak.fetch_max(*queued as u64, Relaxed);
            }
        }
    }
}

/// A frozen copy of the registry, safe to move across threads and
/// render offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries handed to the transport.
    pub queries_sent: u64,
    /// Responses that came back.
    pub responses_received: u64,
    /// Queries that timed out (including unroutable destinations).
    pub timeouts: u64,
    /// Fallbacks to another server of the same zone.
    pub retries: u64,
    /// Hedged extra rounds over an already-failed server set.
    pub hedges: u64,
    /// Truncated-reply fallbacks onto the stream channel.
    pub tc_fallbacks: u64,
    /// Fault-plan decisions that fired in the simulated network.
    pub faults_injected: u64,
    /// Zone cuts crossed.
    pub referrals: u64,
    /// Fresh cache answers.
    pub cache_hits: u64,
    /// Cache misses (live resolution followed).
    pub cache_misses: u64,
    /// RFC 8767 stale answers served.
    pub stale_served: u64,
    /// Cache entries removed because TTL + stale window lapsed (the
    /// TTL wheel's lazy expiry).
    pub cache_expired: u64,
    /// Cache entries removed by the entry/byte budget's CLOCK sweep.
    pub cache_evictions: u64,
    /// Peak live-entry occupancy observed at removal time. Like the
    /// scheduler gauges this measures the store's internal timing, not
    /// scan results, so [`MetricsSnapshot::without_scheduler_stats`]
    /// strips it (and the two removal counters) too.
    pub cache_occupancy_peak: u64,
    /// Negative answers synthesized as NXDOMAIN from cached,
    /// DNSSEC-validated NSEC/NSEC3 ranges (RFC 8198). Unlike the
    /// eviction gauges these count a *result-shaping* decision (an
    /// authority round-trip that never happened), so
    /// [`MetricsSnapshot::without_scheduler_stats`] keeps them.
    pub denials_synthesized_nxdomain: u64,
    /// Negative answers synthesized as NODATA from cached ranges.
    pub denials_synthesized_nodata: u64,
    /// DNSSEC validation steps run.
    pub validation_steps: u64,
    /// Validation steps that recorded at least one finding.
    pub validation_failures: u64,
    /// Structured findings recorded.
    pub findings: u64,
    /// Authoritative answers traced (only when servers carry tracers).
    pub authority_answers: u64,
    /// Completed client resolutions.
    pub resolutions: u64,
    /// ... of which NOERROR.
    pub resolutions_noerror: u64,
    /// ... of which NXDOMAIN.
    pub resolutions_nxdomain: u64,
    /// ... of which SERVFAIL.
    pub resolutions_servfail: u64,
    /// ... with any other RCODE.
    pub resolutions_other: u64,
    /// Total EDE entries attached.
    pub ede_entries: u64,
    /// (vendor, INFO-CODE) → emission count.
    pub ede_by_vendor: BTreeMap<(String, u16), u64>,
    /// Upstream query latency distribution.
    pub query_latency: Histogram,
    /// Whole-resolution duration distribution.
    pub resolution_duration: Histogram,
    /// Resolution tasks admitted by event-driven task pools.
    pub tasks_spawned: u64,
    /// Pooled resolution tasks run to completion.
    pub tasks_completed: u64,
    /// Peak of the in-flight-tasks gauge across all pools. Scheduler
    /// statistics depend on the in-flight window (the blocking driver
    /// records none at all), not on scan results, so result-equality
    /// checks across concurrency levels should compare
    /// [`MetricsSnapshot::without_scheduler_stats`] snapshots.
    pub inflight_tasks_peak: u64,
    /// Peak of the completion-ready-queue-depth gauge across all pools.
    pub ready_queue_peak: u64,
}

impl MetricsSnapshot {
    /// Cache hit ratio in `[0, 1]` over hit + miss probes (stale serves
    /// count as hits — the client got an answer from cache).
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits = self.cache_hits + self.stale_served;
        let total = hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// This snapshot with the scheduler statistics (task counters and
    /// the peak in-flight / peak ready-queue gauges) zeroed.
    ///
    /// Scan results are invariant across in-flight window sizes, but
    /// these fields measure the scheduling itself: the gauges track the
    /// window, and the task counters distinguish pooled execution from
    /// the blocking driver (which spawns no observable tasks). Equality
    /// checks that sweep concurrency compare snapshots through this
    /// adaptor.
    pub fn without_scheduler_stats(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_spawned: 0,
            tasks_completed: 0,
            inflight_tasks_peak: 0,
            ready_queue_peak: 0,
            cache_expired: 0,
            cache_evictions: 0,
            cache_occupancy_peak: 0,
            ..self.clone()
        }
    }

    /// Render as an operator-facing summary block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("metrics summary\n");
        out.push_str(&format!(
            "  transport : {} queries, {} responses, {} timeouts, {} retries\n",
            self.queries_sent, self.responses_received, self.timeouts, self.retries
        ));
        if self.hedges + self.tc_fallbacks + self.faults_injected > 0 {
            out.push_str(&format!(
                "  hardening : {} hedges, {} tc-fallbacks, {} faults injected\n",
                self.hedges, self.tc_fallbacks, self.faults_injected
            ));
        }
        out.push_str(&format!(
            "  iteration : {} referrals, {} validation steps ({} failed), {} findings\n",
            self.referrals, self.validation_steps, self.validation_failures, self.findings
        ));
        out.push_str(&format!(
            "  cache     : {} hits, {} misses, {} stale served (hit ratio {:.1}%)\n",
            self.cache_hits,
            self.cache_misses,
            self.stale_served,
            100.0 * self.cache_hit_ratio()
        ));
        if self.cache_expired + self.cache_evictions > 0 {
            out.push_str(&format!(
                "  eviction  : {} expired, {} evicted (peak occupancy {})\n",
                self.cache_expired, self.cache_evictions, self.cache_occupancy_peak
            ));
        }
        if self.denials_synthesized_nxdomain + self.denials_synthesized_nodata > 0 {
            out.push_str(&format!(
                "  synthesis : {} NXDOMAIN, {} NODATA answered from cached ranges\n",
                self.denials_synthesized_nxdomain, self.denials_synthesized_nodata
            ));
        }
        out.push_str(&format!(
            "  outcomes  : {} resolutions (NOERROR {}, NXDOMAIN {}, SERVFAIL {}, other {})\n",
            self.resolutions,
            self.resolutions_noerror,
            self.resolutions_nxdomain,
            self.resolutions_servfail,
            self.resolutions_other
        ));
        if self.tasks_spawned > 0 {
            out.push_str(&format!(
                "  scheduler : {} tasks ({} completed), peak in-flight {}, peak ready queue {}\n",
                self.tasks_spawned,
                self.tasks_completed,
                self.inflight_tasks_peak,
                self.ready_queue_peak
            ));
        }
        out.push_str(&format!(
            "  latency   : query mean {:.1} ms p99 {} ms; resolution mean {:.1} ms max {} ms\n",
            self.query_latency.mean(),
            self.query_latency.quantile_ms(0.99),
            self.resolution_duration.mean(),
            self.resolution_duration.max
        ));
        if self.ede_entries > 0 {
            out.push_str(&format!(
                "  ede       : {} entries emitted\n",
                self.ede_entries
            ));
            let mut per_vendor: BTreeMap<&str, Vec<(u16, u64)>> = BTreeMap::new();
            for ((vendor, code), count) in &self.ede_by_vendor {
                per_vendor.entry(vendor).or_default().push((*code, *count));
            }
            for (vendor, codes) in per_vendor {
                let detail: Vec<String> = codes
                    .iter()
                    .map(|(code, count)| format!("{code}\u{00d7}{count}"))
                    .collect();
                out.push_str(&format!("    {vendor}: {}\n", detail.join(", ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip() -> std::net::IpAddr {
        "192.0.2.1".parse().unwrap()
    }

    #[test]
    fn counters_follow_events() {
        let m = Metrics::new();
        m.record(
            0,
            &TraceEvent::QuerySent {
                dst: ip(),
                qname: "a".into(),
                qtype: 1,
                id: 1,
            },
        );
        m.record(
            0,
            &TraceEvent::QuerySent {
                dst: ip(),
                qname: "a".into(),
                qtype: 1,
                id: 2,
            },
        );
        m.record(
            20,
            &TraceEvent::ResponseReceived {
                src: ip(),
                rcode: 0,
                answers: 1,
                latency_ms: 20,
            },
        );
        m.record(
            0,
            &TraceEvent::Timeout {
                dst: ip(),
                qname: "a".into(),
                unroutable: true,
            },
        );
        m.record(
            0,
            &TraceEvent::Retry {
                attempt: 1,
                next: ip(),
            },
        );
        m.record(
            0,
            &TraceEvent::CacheProbe {
                qname: "a".into(),
                qtype: 1,
                outcome: CacheOutcome::Hit,
            },
        );
        m.record(
            0,
            &TraceEvent::CacheProbe {
                qname: "a".into(),
                qtype: 1,
                outcome: CacheOutcome::Miss,
            },
        );
        m.record(
            0,
            &TraceEvent::ValidationStep {
                target: "DNSKEY com".into(),
                ok: false,
            },
        );
        m.record(
            0,
            &TraceEvent::EdeEmitted {
                vendor: "Cloudflare DNS".into(),
                code: 7,
                extra_text: String::new(),
            },
        );
        m.record(
            0,
            &TraceEvent::DenialSynthesized {
                qname: "a".into(),
                nxdomain: true,
                ttl: 60,
            },
        );
        m.record(
            0,
            &TraceEvent::ResolutionFinished {
                rcode: 2,
                ede_count: 1,
                duration_ms: 40,
            },
        );

        let s = m.snapshot();
        assert_eq!(s.queries_sent, 2);
        assert_eq!(s.responses_received, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert!((s.cache_hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(s.validation_steps, 1);
        assert_eq!(s.validation_failures, 1);
        assert_eq!(s.ede_entries, 1);
        assert_eq!(s.ede_by_vendor[&("Cloudflare DNS".to_string(), 7)], 1);
        assert_eq!(s.resolutions_servfail, 1);
        assert_eq!(s.denials_synthesized_nxdomain, 1);
        assert_eq!(s.denials_synthesized_nodata, 0);
        // Synthesis shapes results, so concurrency-invariance checks
        // must still see it after stripping the scheduler gauges.
        assert_eq!(s.without_scheduler_stats().denials_synthesized_nxdomain, 1);
        assert!(
            s.render().contains("1 NXDOMAIN, 0 NODATA"),
            "{}",
            s.render()
        );
        assert_eq!(s.query_latency.total, 1);
        assert_eq!(s.resolution_duration.max, 40);
        let render = s.render();
        assert!(render.contains("2 queries"), "{render}");
        assert!(render.contains("Cloudflare DNS: 7\u{00d7}1"), "{render}");
    }

    #[test]
    fn scheduler_gauges_track_peaks() {
        let m = Metrics::new();
        for (task, in_flight, queued) in [(0u64, 1usize, 0usize), (1, 2, 1), (2, 3, 2)] {
            m.record(
                0,
                &TraceEvent::TaskSpawned {
                    task,
                    in_flight,
                    queued,
                },
            );
        }
        m.record(
            0,
            &TraceEvent::TaskCompleted {
                task: 0,
                in_flight: 2,
                queued: 1,
            },
        );
        m.record(
            0,
            &TraceEvent::CacheEvicted {
                expired: 4,
                evicted: 2,
                occupancy: 9,
            },
        );
        let s = m.snapshot();
        assert_eq!(s.cache_expired, 4);
        assert_eq!(s.cache_evictions, 2);
        assert_eq!(s.cache_occupancy_peak, 9);
        assert!(
            s.render().contains("4 expired, 2 evicted"),
            "{}",
            s.render()
        );
        assert_eq!(s.tasks_spawned, 3);
        assert_eq!(s.tasks_completed, 1);
        assert_eq!(s.inflight_tasks_peak, 3);
        assert_eq!(s.ready_queue_peak, 2);
        assert!(s.render().contains("peak in-flight 3"), "{}", s.render());

        let stripped = s.without_scheduler_stats();
        assert_eq!(stripped.inflight_tasks_peak, 0);
        assert_eq!(stripped.ready_queue_peak, 0);
        assert_eq!(stripped.tasks_spawned, 0);
        assert_eq!(stripped.tasks_completed, 0);
        assert_eq!(stripped.cache_expired, 0);
        assert_eq!(stripped.cache_evictions, 0);
        assert_eq!(stripped.cache_occupancy_peak, 0);
        assert_eq!(
            stripped.queries_sent, s.queries_sent,
            "real counters survive"
        );
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let live = AtomicHistogram::default();
        for v in [0, 1, 20, 20, 2_000, 50_000] {
            live.observe(v);
        }
        let h = live.snapshot();
        assert_eq!(h.total, 6);
        assert_eq!(h.max, 50_000);
        assert_eq!(h.counts[0], 2); // <= 1 ms
        assert_eq!(h.counts[2], 2); // <= 20 ms
        assert_eq!(h.counts[LATENCY_BUCKETS_MS.len()], 1); // overflow
        assert_eq!(h.quantile_ms(0.0), 1);
        assert!(h.quantile_ms(1.0) >= 2_000);
        assert!(h.mean() > 0.0);
        assert_eq!(Histogram::default().quantile_ms(0.5), 0);
    }
}
