//! `ede-trace` — structured resolution tracing and metrics for the
//! extended-dns-errors stack.
//!
//! A failed resolution used to yield one RCODE plus EDE codes with no
//! record of the retries, timeouts, referrals, or validation steps that
//! produced them. This crate is the record: a zero-dependency, sans-IO
//! event model threaded through the transport (`ede-netsim`), the
//! resolver engine (`ede-resolver`), and the authoritative servers
//! (`ede-authority`).
//!
//! # Design
//!
//! * **Events, not logs** — [`TraceEvent`] is a typed enum
//!   ([`TraceEvent::kind`] gives each variant a stable tag); rendering
//!   to a timeline, JSONL, or counters happens at the edge.
//! * **Sinks decide the cost** — instrumented code emits into a
//!   [`Tracer`]; when disabled (the default) that is one `Option`
//!   check. A [`ResolutionTrace`] ring buffer retains timelines, a
//!   [`Metrics`] registry turns the same stream into counters and
//!   latency histograms, and [`MultiSink`] fans out to both.
//! * **Virtual time only** — events are stamped through the
//!   [`TraceClock`] trait (implemented by `ede-netsim`'s `SimClock`),
//!   never the host clock, so traces are deterministic and
//!   golden-testable.
//!
//! # Example
//!
//! ```
//! use ede_trace::{ResolutionTrace, TraceClock, TraceEvent, Tracer};
//! use std::sync::Arc;
//!
//! struct FixedClock;
//! impl TraceClock for FixedClock {
//!     fn trace_now_millis(&self) -> u64 { 1_000 }
//! }
//!
//! let trace = Arc::new(ResolutionTrace::new(256));
//! let tracer = Tracer::new(trace.clone(), Arc::new(FixedClock));
//! tracer.emit(TraceEvent::ResolutionStarted { qname: "example.com".into(), qtype: 1 });
//! assert_eq!(trace.len(), 1);
//! assert!(trace.to_jsonl().contains("\"kind\":\"resolution_started\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod server;
pub mod sink;

pub use event::{CacheOutcome, TimedEvent, TraceEvent};
pub use export::{JsonlSnapshotWriter, MemorySnapshotSink, SnapshotEntry, SnapshotSink};
pub use metrics::{Histogram, Metrics, MetricsSnapshot};
pub use server::{ServerMetrics, ServerMetricsSnapshot, UsHistogram};
pub use sink::{MultiSink, ResolutionTrace, TraceClock, TraceSink, Tracer};
