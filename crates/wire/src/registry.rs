//! IANA DNSSEC registries: algorithm numbers and DS digest types.
//!
//! The testbed's `ds-unassigned-key-algo` (100), `ds-reserved-key-algo`
//! (200), `unassigned-zsk-algo` (100), `reserved-zsk-algo` (200) and
//! `ds-unassigned-digest-algo` (100) cases all hinge on the registry
//! *status* of a number, so the registry models assigned / unassigned /
//! reserved ranges explicitly, mirroring the IANA tables as of the paper's
//! measurement (May 2023).

use std::fmt;

/// DNSSEC security algorithm numbers
/// (IANA "DNS Security Algorithm Numbers" registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecAlg(pub u8);

/// Registry status of an algorithm or digest number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegistryStatus {
    /// A usable, assigned signing algorithm.
    Assigned,
    /// Assigned but not for zone signing (e.g. DELETE, INDIRECT).
    AssignedNonSigning,
    /// In the registry's unassigned range.
    Unassigned,
    /// In the registry's reserved range.
    Reserved,
}

impl SecAlg {
    /// RSA/MD5 — deprecated; must not be used (RFC 6725).
    pub const RSAMD5: SecAlg = SecAlg(1);
    /// Diffie-Hellman (non-signing).
    pub const DH: SecAlg = SecAlg(2);
    /// DSA/SHA-1 — optional, discouraged.
    pub const DSA: SecAlg = SecAlg(3);
    /// RSA/SHA-1.
    pub const RSASHA1: SecAlg = SecAlg(5);
    /// DSA-NSEC3-SHA1.
    pub const DSA_NSEC3_SHA1: SecAlg = SecAlg(6);
    /// RSASHA1-NSEC3-SHA1.
    pub const RSASHA1_NSEC3_SHA1: SecAlg = SecAlg(7);
    /// RSA/SHA-256 (RFC 5702).
    pub const RSASHA256: SecAlg = SecAlg(8);
    /// RSA/SHA-512 (RFC 5702).
    pub const RSASHA512: SecAlg = SecAlg(10);
    /// GOST R 34.10-2001 (RFC 5933) — optional, rarely supported.
    pub const ECC_GOST: SecAlg = SecAlg(12);
    /// ECDSA P-256 with SHA-256 (RFC 6605).
    pub const ECDSAP256SHA256: SecAlg = SecAlg(13);
    /// ECDSA P-384 with SHA-384 (RFC 6605).
    pub const ECDSAP384SHA384: SecAlg = SecAlg(14);
    /// Ed25519 (RFC 8080).
    pub const ED25519: SecAlg = SecAlg(15);
    /// Ed448 (RFC 8080) — the newest algorithm; Cloudflare did not yet
    /// support it at measurement time (paper §3.3).
    pub const ED448: SecAlg = SecAlg(16);

    /// Registry status of this number (per IANA as of May 2023:
    /// 17–122 unassigned, 123–251 reserved, 253–254 private use).
    pub fn status(self) -> RegistryStatus {
        match self.0 {
            1 | 3 | 5..=8 | 10 | 12..=16 => RegistryStatus::Assigned,
            0 | 4 | 9 | 11 | 252 | 255 => RegistryStatus::Reserved,
            2 => RegistryStatus::AssignedNonSigning,
            17..=122 => RegistryStatus::Unassigned,
            123..=251 => RegistryStatus::Reserved,
            253 | 254 => RegistryStatus::AssignedNonSigning, // private use
        }
    }

    /// IANA mnemonic, or a synthesized one for unassigned/reserved values.
    pub fn mnemonic(self) -> String {
        match self.0 {
            1 => "RSAMD5".into(),
            2 => "DH".into(),
            3 => "DSA".into(),
            5 => "RSASHA1".into(),
            6 => "DSA-NSEC3-SHA1".into(),
            7 => "RSASHA1-NSEC3-SHA1".into(),
            8 => "RSASHA256".into(),
            10 => "RSASHA512".into(),
            12 => "ECC-GOST".into(),
            13 => "ECDSAP256SHA256".into(),
            14 => "ECDSAP384SHA384".into(),
            15 => "ED25519".into(),
            16 => "ED448".into(),
            v => format!("ALG{v}"),
        }
    }

    /// True if RFC 8624 forbids *validating* with this algorithm
    /// (RSA/MD5) or it is formally prohibited for signing (DSA family).
    pub fn is_deprecated(self) -> bool {
        matches!(self.0, 1 | 3 | 6)
    }
}

impl fmt::Display for SecAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// DS digest type numbers
/// (IANA "Delegation Signer Digest Algorithms" registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DigestAlg(pub u8);

impl DigestAlg {
    /// SHA-1 — mandatory.
    pub const SHA1: DigestAlg = DigestAlg(1);
    /// SHA-256 — mandatory.
    pub const SHA256: DigestAlg = DigestAlg(2);
    /// GOST R 34.11-94 — optional; Cloudflare does not support it
    /// (paper §4.2.10).
    pub const GOST: DigestAlg = DigestAlg(3);
    /// SHA-384 — optional.
    pub const SHA384: DigestAlg = DigestAlg(4);

    /// Registry status (0 reserved; 1–4 assigned; 5+ unassigned at the
    /// measurement date — §4.2.10 reports domains with digest type 8,
    /// and the testbed uses 100).
    pub fn status(self) -> RegistryStatus {
        match self.0 {
            0 => RegistryStatus::Reserved,
            1..=4 => RegistryStatus::Assigned,
            _ => RegistryStatus::Unassigned,
        }
    }

    /// Expected digest length in bytes, if this is an assigned type.
    pub fn digest_len(self) -> Option<usize> {
        match self.0 {
            1 => Some(20),
            2 => Some(32),
            3 => Some(32),
            4 => Some(48),
            _ => None,
        }
    }

    /// IANA mnemonic, or a synthesized one.
    pub fn mnemonic(self) -> String {
        match self.0 {
            1 => "SHA-1".into(),
            2 => "SHA-256".into(),
            3 => "GOST R 34.11-94".into(),
            4 => "SHA-384".into(),
            v => format!("DIGEST{v}"),
        }
    }
}

impl fmt::Display for DigestAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_algorithm_statuses() {
        // The statuses the paper's subdomain groups 2, 5 and 8 rely on.
        assert_eq!(SecAlg(100).status(), RegistryStatus::Unassigned);
        assert_eq!(SecAlg(200).status(), RegistryStatus::Reserved);
        assert_eq!(SecAlg::RSASHA256.status(), RegistryStatus::Assigned);
        assert_eq!(SecAlg::ED448.status(), RegistryStatus::Assigned);
        assert_eq!(SecAlg::RSAMD5.status(), RegistryStatus::Assigned);
        assert!(SecAlg::RSAMD5.is_deprecated());
        assert!(SecAlg::DSA.is_deprecated());
        assert!(!SecAlg::ED25519.is_deprecated());
    }

    #[test]
    fn digest_statuses() {
        assert_eq!(DigestAlg(100).status(), RegistryStatus::Unassigned);
        assert_eq!(DigestAlg(8).status(), RegistryStatus::Unassigned);
        assert_eq!(DigestAlg(0).status(), RegistryStatus::Reserved);
        assert_eq!(DigestAlg::SHA256.status(), RegistryStatus::Assigned);
        assert_eq!(DigestAlg::GOST.status(), RegistryStatus::Assigned);
    }

    #[test]
    fn digest_lengths() {
        assert_eq!(DigestAlg::SHA1.digest_len(), Some(20));
        assert_eq!(DigestAlg::SHA256.digest_len(), Some(32));
        assert_eq!(DigestAlg::SHA384.digest_len(), Some(48));
        assert_eq!(DigestAlg(100).digest_len(), None);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(SecAlg(8).mnemonic(), "RSASHA256");
        assert_eq!(SecAlg(100).mnemonic(), "ALG100");
        assert_eq!(DigestAlg(3).mnemonic(), "GOST R 34.11-94");
    }
}
