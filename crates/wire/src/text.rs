//! dig-style presentation of messages.
//!
//! `dig` ≥ 9.16 prints EDE options in the OPT pseudosection; operators
//! troubleshooting with the paper's testbed see exactly that. This
//! module renders a [`Message`] the same way so the library's CLI
//! surfaces read like the tooling DNS people already know.

use crate::edns::EdnsOption;
use crate::message::Message;
use crate::rdata::Rdata;
use crate::record::Record;
use std::fmt::Write as _;

fn flags_line(m: &Message) -> String {
    let mut flags = Vec::new();
    if m.response {
        flags.push("qr");
    }
    if m.authoritative {
        flags.push("aa");
    }
    if m.truncated {
        flags.push("tc");
    }
    if m.recursion_desired {
        flags.push("rd");
    }
    if m.recursion_available {
        flags.push("ra");
    }
    if m.authentic_data {
        flags.push("ad");
    }
    if m.checking_disabled {
        flags.push("cd");
    }
    flags.join(" ")
}

fn render_record(out: &mut String, rec: &Record) {
    let rdata = match &rec.rdata {
        Rdata::A(a) => a.to_string(),
        Rdata::Aaaa(a) => a.to_string(),
        Rdata::Ns(n) | Rdata::Cname(n) | Rdata::Ptr(n) => n.to_string(),
        other => format!("{other:?}"),
    };
    let _ = writeln!(
        out,
        "{}\t{}\tIN\t{}\t{}",
        rec.name,
        rec.ttl,
        rec.rtype(),
        rdata
    );
}

/// Render a message dig-style: header, OPT pseudosection (with EDE),
/// question, and the three record sections.
pub fn render_dig(m: &Message) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        ";; ->>HEADER<<- opcode: QUERY, status: {}, id: {}",
        m.rcode, m.id
    );
    let _ = writeln!(
        out,
        ";; flags: {}; QUERY: {}, ANSWER: {}, AUTHORITY: {}, ADDITIONAL: {}",
        flags_line(m),
        m.questions.len(),
        m.answers.len(),
        m.authorities.len(),
        m.additionals.len() + usize::from(m.edns.is_some()),
    );

    if let Some(edns) = &m.edns {
        let _ = writeln!(out, "\n;; OPT PSEUDOSECTION:");
        let _ = writeln!(
            out,
            "; EDNS: version: {}, flags:{}; udp: {}",
            edns.version,
            if edns.dnssec_ok { " do" } else { "" },
            edns.udp_payload_size
        );
        for opt in &edns.options {
            match opt {
                EdnsOption::Ede(e) => {
                    let _ = writeln!(
                        out,
                        "; EDE: {} ({}){}",
                        e.code.to_u16(),
                        e.code.description(),
                        if e.extra_text.is_empty() {
                            String::new()
                        } else {
                            format!(": ({})", e.extra_text)
                        }
                    );
                }
                EdnsOption::Unknown { code, data } => {
                    let _ = writeln!(out, "; OPT={code}: {} bytes", data.len());
                }
            }
        }
    }

    if !m.questions.is_empty() {
        let _ = writeln!(out, "\n;; QUESTION SECTION:");
        for q in &m.questions {
            let _ = writeln!(out, ";{}\t\tIN\t{}", q.name, q.qtype);
        }
    }
    for (title, recs) in [
        ("ANSWER", &m.answers),
        ("AUTHORITY", &m.authorities),
        ("ADDITIONAL", &m.additionals),
    ] {
        if !recs.is_empty() {
            let _ = writeln!(out, "\n;; {title} SECTION:");
            for rec in recs {
                render_record(&mut out, rec);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ede::{EdeCode, EdeEntry};
    use crate::{Edns, Name, Rcode, RrType};

    #[test]
    fn renders_like_dig() {
        let q = Message::query(7, Name::parse("broken.example").unwrap(), RrType::A);
        let mut r = Message::response_to(&q);
        r.rcode = Rcode::ServFail;
        r.recursion_available = true;
        let mut edns = Edns::default();
        edns.push_ede(EdeEntry::with_text(
            EdeCode::SignatureExpired,
            "expired 2019",
        ));
        r.edns = Some(edns);

        let text = render_dig(&r);
        assert!(text.contains("status: SERVFAIL"));
        assert!(text.contains("flags: qr rd ra"));
        assert!(text.contains("; EDE: 7 (Signature Expired): (expired 2019)"));
        assert!(text.contains(";broken.example.\t\tIN\tA"));
    }

    #[test]
    fn answer_sections_render() {
        let q = Message::query(7, Name::parse("ok.example").unwrap(), RrType::A);
        let mut r = Message::response_to(&q);
        r.answers.push(Record::new(
            Name::parse("ok.example").unwrap(),
            60,
            Rdata::A("192.0.2.1".parse().unwrap()),
        ));
        let text = render_dig(&r);
        assert!(text.contains(";; ANSWER SECTION:"));
        assert!(text.contains("192.0.2.1"));
        assert!(!text.contains(";; AUTHORITY SECTION:"));
    }
}
