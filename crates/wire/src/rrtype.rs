//! Resource record TYPE registry.

use std::fmt;

/// DNS RR TYPE values used by the reproduction, plus a transparent
/// fallback for everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrType {
    /// IPv4 host address (RFC 1035).
    A,
    /// Authoritative name server (RFC 1035).
    Ns,
    /// Canonical name alias (RFC 1035).
    Cname,
    /// Start of authority (RFC 1035).
    Soa,
    /// Domain name pointer (RFC 1035).
    Ptr,
    /// Mail exchange (RFC 1035).
    Mx,
    /// Text strings (RFC 1035).
    Txt,
    /// IPv6 host address (RFC 3596).
    Aaaa,
    /// EDNS(0) OPT pseudo-RR (RFC 6891).
    Opt,
    /// Delegation signer (RFC 4034).
    Ds,
    /// DNSSEC signature (RFC 4034).
    Rrsig,
    /// Authenticated denial of existence (RFC 4034).
    Nsec,
    /// DNSSEC public key (RFC 4034).
    Dnskey,
    /// Hashed authenticated denial of existence (RFC 5155).
    Nsec3,
    /// NSEC3 zone parameters (RFC 5155).
    Nsec3param,
    /// Any other TYPE, carried numerically.
    Other(u16),
}

impl RrType {
    /// Numeric TYPE value.
    pub fn to_u16(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Ds => 43,
            RrType::Rrsig => 46,
            RrType::Nsec => 47,
            RrType::Dnskey => 48,
            RrType::Nsec3 => 50,
            RrType::Nsec3param => 51,
            RrType::Other(v) => v,
        }
    }

    /// Decode a numeric TYPE value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            43 => RrType::Ds,
            46 => RrType::Rrsig,
            47 => RrType::Nsec,
            48 => RrType::Dnskey,
            50 => RrType::Nsec3,
            51 => RrType::Nsec3param,
            other => RrType::Other(other),
        }
    }

    /// True for the DNSSEC record types that never appear in answers to
    /// ordinary queries unless requested (used by section filtering).
    pub fn is_dnssec(self) -> bool {
        matches!(
            self,
            RrType::Ds
                | RrType::Rrsig
                | RrType::Nsec
                | RrType::Dnskey
                | RrType::Nsec3
                | RrType::Nsec3param
        )
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => write!(f, "A"),
            RrType::Ns => write!(f, "NS"),
            RrType::Cname => write!(f, "CNAME"),
            RrType::Soa => write!(f, "SOA"),
            RrType::Ptr => write!(f, "PTR"),
            RrType::Mx => write!(f, "MX"),
            RrType::Txt => write!(f, "TXT"),
            RrType::Aaaa => write!(f, "AAAA"),
            RrType::Opt => write!(f, "OPT"),
            RrType::Ds => write!(f, "DS"),
            RrType::Rrsig => write!(f, "RRSIG"),
            RrType::Nsec => write!(f, "NSEC"),
            RrType::Dnskey => write!(f, "DNSKEY"),
            RrType::Nsec3 => write!(f, "NSEC3"),
            RrType::Nsec3param => write!(f, "NSEC3PARAM"),
            RrType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_roundtrip() {
        for v in 0..300u16 {
            assert_eq!(RrType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(RrType::A.to_u16(), 1);
        assert_eq!(RrType::Aaaa.to_u16(), 28);
        assert_eq!(RrType::Opt.to_u16(), 41);
        assert_eq!(RrType::Rrsig.to_u16(), 46);
        assert_eq!(RrType::Nsec3.to_u16(), 50);
    }

    #[test]
    fn dnssec_classification() {
        assert!(RrType::Rrsig.is_dnssec());
        assert!(RrType::Nsec3param.is_dnssec());
        assert!(!RrType::A.is_dnssec());
        assert!(!RrType::Opt.is_dnssec());
    }
}
