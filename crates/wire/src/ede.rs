//! RFC 8914 Extended DNS Errors.
//!
//! The EDE option (EDNS option code 15) carries a 16-bit INFO-CODE and an
//! optional UTF-8 EXTRA-TEXT. [`EdeCode`] reproduces the complete IANA
//! registry as of the paper's measurement (Table 1): codes 0–24 from the
//! RFC itself plus the five later registrations (25–29).

use crate::error::WireError;
use std::fmt;

/// EDNS option code assigned to Extended DNS Errors.
pub const EDE_OPTION_CODE: u16 = 15;

/// Registered Extended DNS Error INFO-CODEs (IANA registry, Table 1 of
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdeCode {
    /// 0 — Other: an error not covered by any other code.
    Other,
    /// 1 — Unsupported DNSKEY Algorithm.
    UnsupportedDnskeyAlgorithm,
    /// 2 — Unsupported DS Digest Type.
    UnsupportedDsDigestType,
    /// 3 — Stale Answer: served from cache past its TTL (RFC 8767).
    StaleAnswer,
    /// 4 — Forged Answer: policy-mandated synthetic data.
    ForgedAnswer,
    /// 5 — DNSSEC Indeterminate.
    DnssecIndeterminate,
    /// 6 — DNSSEC Bogus.
    DnssecBogus,
    /// 7 — Signature Expired.
    SignatureExpired,
    /// 8 — Signature Not Yet Valid.
    SignatureNotYetValid,
    /// 9 — DNSKEY Missing: no DNSKEY matched the DS RRset.
    DnskeyMissing,
    /// 10 — RRSIGs Missing.
    RrsigsMissing,
    /// 11 — No Zone Key Bit Set.
    NoZoneKeyBitSet,
    /// 12 — NSEC Missing: denial of existence proof was absent.
    NsecMissing,
    /// 13 — Cached Error: the resolver replayed a previously-failed
    /// resolution from cache.
    CachedError,
    /// 14 — Not Ready: the server is not yet ready to serve.
    NotReady,
    /// 15 — Blocked: the domain is on a blocklist imposed by the operator.
    Blocked,
    /// 16 — Censored: blocked by an external requirement.
    Censored,
    /// 17 — Filtered: blocked at the client's request.
    Filtered,
    /// 18 — Prohibited: the client is outside the server's access policy.
    Prohibited,
    /// 19 — Stale NXDOMAIN Answer.
    StaleNxdomainAnswer,
    /// 20 — Not Authoritative.
    NotAuthoritative,
    /// 21 — Not Supported: the requested operation is not implemented.
    NotSupported,
    /// 22 — No Reachable Authority.
    NoReachableAuthority,
    /// 23 — Network Error: an unrecoverable error talking to another
    /// server.
    NetworkError,
    /// 24 — Invalid Data.
    InvalidData,
    /// 25 — Signature Expired before Valid (registered 2022).
    SignatureExpiredBeforeValid,
    /// 26 — Too Early (RFC 8446-style anti-replay, RFC 9250).
    TooEarly,
    /// 27 — Unsupported NSEC3 Iterations Value (RFC 9276).
    UnsupportedNsec3IterationsValue,
    /// 28 — Unable to conform to policy.
    UnableToConformToPolicy,
    /// 29 — Synthesized.
    Synthesized,
    /// Unassigned or private-use code, carried numerically.
    Unassigned(u16),
}

impl EdeCode {
    /// Every registered code in numeric order — iterating this is how the
    /// Table 1 report is produced.
    pub const REGISTERED: [EdeCode; 30] = [
        EdeCode::Other,
        EdeCode::UnsupportedDnskeyAlgorithm,
        EdeCode::UnsupportedDsDigestType,
        EdeCode::StaleAnswer,
        EdeCode::ForgedAnswer,
        EdeCode::DnssecIndeterminate,
        EdeCode::DnssecBogus,
        EdeCode::SignatureExpired,
        EdeCode::SignatureNotYetValid,
        EdeCode::DnskeyMissing,
        EdeCode::RrsigsMissing,
        EdeCode::NoZoneKeyBitSet,
        EdeCode::NsecMissing,
        EdeCode::CachedError,
        EdeCode::NotReady,
        EdeCode::Blocked,
        EdeCode::Censored,
        EdeCode::Filtered,
        EdeCode::Prohibited,
        EdeCode::StaleNxdomainAnswer,
        EdeCode::NotAuthoritative,
        EdeCode::NotSupported,
        EdeCode::NoReachableAuthority,
        EdeCode::NetworkError,
        EdeCode::InvalidData,
        EdeCode::SignatureExpiredBeforeValid,
        EdeCode::TooEarly,
        EdeCode::UnsupportedNsec3IterationsValue,
        EdeCode::UnableToConformToPolicy,
        EdeCode::Synthesized,
    ];

    /// Numeric INFO-CODE.
    pub fn to_u16(self) -> u16 {
        match self {
            EdeCode::Other => 0,
            EdeCode::UnsupportedDnskeyAlgorithm => 1,
            EdeCode::UnsupportedDsDigestType => 2,
            EdeCode::StaleAnswer => 3,
            EdeCode::ForgedAnswer => 4,
            EdeCode::DnssecIndeterminate => 5,
            EdeCode::DnssecBogus => 6,
            EdeCode::SignatureExpired => 7,
            EdeCode::SignatureNotYetValid => 8,
            EdeCode::DnskeyMissing => 9,
            EdeCode::RrsigsMissing => 10,
            EdeCode::NoZoneKeyBitSet => 11,
            EdeCode::NsecMissing => 12,
            EdeCode::CachedError => 13,
            EdeCode::NotReady => 14,
            EdeCode::Blocked => 15,
            EdeCode::Censored => 16,
            EdeCode::Filtered => 17,
            EdeCode::Prohibited => 18,
            EdeCode::StaleNxdomainAnswer => 19,
            EdeCode::NotAuthoritative => 20,
            EdeCode::NotSupported => 21,
            EdeCode::NoReachableAuthority => 22,
            EdeCode::NetworkError => 23,
            EdeCode::InvalidData => 24,
            EdeCode::SignatureExpiredBeforeValid => 25,
            EdeCode::TooEarly => 26,
            EdeCode::UnsupportedNsec3IterationsValue => 27,
            EdeCode::UnableToConformToPolicy => 28,
            EdeCode::Synthesized => 29,
            EdeCode::Unassigned(v) => v,
        }
    }

    /// Decode a numeric INFO-CODE.
    pub fn from_u16(v: u16) -> Self {
        if let Some(code) = Self::REGISTERED.get(usize::from(v)) {
            *code
        } else {
            EdeCode::Unassigned(v)
        }
    }

    /// The registry description ("purpose") of the code.
    pub fn description(self) -> &'static str {
        match self {
            EdeCode::Other => "Other",
            EdeCode::UnsupportedDnskeyAlgorithm => "Unsupported DNSKEY Algorithm",
            EdeCode::UnsupportedDsDigestType => "Unsupported DS Digest Type",
            EdeCode::StaleAnswer => "Stale Answer",
            EdeCode::ForgedAnswer => "Forged Answer",
            EdeCode::DnssecIndeterminate => "DNSSEC Indeterminate",
            EdeCode::DnssecBogus => "DNSSEC Bogus",
            EdeCode::SignatureExpired => "Signature Expired",
            EdeCode::SignatureNotYetValid => "Signature Not Yet Valid",
            EdeCode::DnskeyMissing => "DNSKEY Missing",
            EdeCode::RrsigsMissing => "RRSIGs Missing",
            EdeCode::NoZoneKeyBitSet => "No Zone Key Bit Set",
            EdeCode::NsecMissing => "NSEC Missing",
            EdeCode::CachedError => "Cached Error",
            EdeCode::NotReady => "Not Ready",
            EdeCode::Blocked => "Blocked",
            EdeCode::Censored => "Censored",
            EdeCode::Filtered => "Filtered",
            EdeCode::Prohibited => "Prohibited",
            EdeCode::StaleNxdomainAnswer => "Stale NXDOMAIN Answer",
            EdeCode::NotAuthoritative => "Not Authoritative",
            EdeCode::NotSupported => "Not Supported",
            EdeCode::NoReachableAuthority => "No Reachable Authority",
            EdeCode::NetworkError => "Network Error",
            EdeCode::InvalidData => "Invalid Data",
            EdeCode::SignatureExpiredBeforeValid => "Signature Expired before Valid",
            EdeCode::TooEarly => "Too Early",
            EdeCode::UnsupportedNsec3IterationsValue => "Unsupported NSEC3 Iterations Value",
            EdeCode::UnableToConformToPolicy => "Unable to conform to policy",
            EdeCode::Synthesized => "Synthesized",
            EdeCode::Unassigned(_) => "Unassigned",
        }
    }

    /// The paper's §2 functional grouping of INFO-CODEs.
    pub fn category(self) -> EdeCategory {
        match self.to_u16() {
            1 | 2 | 5..=12 | 25 | 27 => EdeCategory::DnssecValidation,
            3 | 13 | 19 | 29 => EdeCategory::Caching,
            4 | 15..=18 | 20 => EdeCategory::ResolverPolicy,
            14 | 21..=23 => EdeCategory::SoftwareOperation,
            _ => EdeCategory::Other,
        }
    }
}

/// Functional grouping from §2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdeCategory {
    /// DNSSEC validation problems (codes 1, 2, 5–12, 25, 27).
    DnssecValidation,
    /// Caching behaviour (3, 13, 19, 29).
    Caching,
    /// Resolver policy decisions (4, 15–18, 20).
    ResolverPolicy,
    /// DNS software operation (14, 21–23).
    SoftwareOperation,
    /// Everything else (0, 24, 26, 28).
    Other,
}

impl fmt::Display for EdeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.description(), self.to_u16())
    }
}

/// One Extended DNS Error entry: INFO-CODE plus optional EXTRA-TEXT.
///
/// Multiple entries may appear in one response (the paper's scan sees
/// combinations like *Stale Answer* + *No Reachable Authority* +
/// *Network Error*), each as its own EDNS option.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdeEntry {
    /// The INFO-CODE.
    pub code: EdeCode,
    /// Human-readable elaboration; empty when absent. RFC 8914 says the
    /// text is UTF-8 and not NUL-terminated.
    pub extra_text: String,
}

impl EdeEntry {
    /// Entry with no EXTRA-TEXT.
    pub fn bare(code: EdeCode) -> Self {
        EdeEntry {
            code,
            extra_text: String::new(),
        }
    }

    /// Entry with EXTRA-TEXT.
    pub fn with_text(code: EdeCode, text: impl Into<String>) -> Self {
        EdeEntry {
            code,
            extra_text: text.into(),
        }
    }

    /// Encode the option *payload* (INFO-CODE ‖ EXTRA-TEXT).
    pub fn encode_payload(&self) -> Result<Vec<u8>, WireError> {
        if self.extra_text.len() > usize::from(u16::MAX) - 2 {
            return Err(WireError::FieldOverflow("EDE EXTRA-TEXT"));
        }
        let mut out = Vec::with_capacity(2 + self.extra_text.len());
        out.extend_from_slice(&self.code.to_u16().to_be_bytes());
        out.extend_from_slice(self.extra_text.as_bytes());
        Ok(out)
    }

    /// Decode an option payload.
    pub fn decode_payload(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < 2 {
            return Err(WireError::Truncated {
                context: "EDE INFO-CODE",
            });
        }
        let code = EdeCode::from_u16(u16::from_be_bytes([data[0], data[1]]));
        // RFC 8914: treat invalid UTF-8 leniently rather than dropping the
        // whole option.
        let extra_text = String::from_utf8_lossy(&data[2..]).into_owned();
        Ok(EdeEntry { code, extra_text })
    }
}

impl fmt::Display for EdeEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.extra_text.is_empty() {
            write!(f, "{}", self.code)
        } else {
            write!(f, "{}: {}", self.code, self.extra_text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        assert_eq!(EdeCode::REGISTERED.len(), 30);
        for (i, code) in EdeCode::REGISTERED.iter().enumerate() {
            assert_eq!(code.to_u16(), i as u16);
            assert_eq!(EdeCode::from_u16(i as u16), *code);
        }
    }

    #[test]
    fn unassigned_roundtrip() {
        assert_eq!(EdeCode::from_u16(30), EdeCode::Unassigned(30));
        assert_eq!(EdeCode::Unassigned(49152).to_u16(), 49152);
    }

    #[test]
    fn table1_descriptions_spot_check() {
        assert_eq!(EdeCode::DnssecBogus.description(), "DNSSEC Bogus");
        assert_eq!(
            EdeCode::from_u16(22).description(),
            "No Reachable Authority"
        );
        assert_eq!(
            EdeCode::from_u16(25).description(),
            "Signature Expired before Valid"
        );
        assert_eq!(EdeCode::from_u16(29).description(), "Synthesized");
    }

    #[test]
    fn categories_match_paper_section2() {
        use EdeCategory::*;
        assert_eq!(EdeCode::DnssecBogus.category(), DnssecValidation);
        assert_eq!(
            EdeCode::UnsupportedNsec3IterationsValue.category(),
            DnssecValidation
        );
        assert_eq!(EdeCode::StaleAnswer.category(), Caching);
        assert_eq!(EdeCode::Synthesized.category(), Caching);
        assert_eq!(EdeCode::Blocked.category(), ResolverPolicy);
        assert_eq!(EdeCode::NotAuthoritative.category(), ResolverPolicy);
        assert_eq!(EdeCode::NetworkError.category(), SoftwareOperation);
        assert_eq!(EdeCode::InvalidData.category(), Other);
        assert_eq!(EdeCode::TooEarly.category(), Other);
    }

    #[test]
    fn payload_roundtrip() {
        let e = EdeEntry::with_text(
            EdeCode::NetworkError,
            "1.2.3.4:53 rcode=REFUSED for a.com A",
        );
        let payload = e.encode_payload().unwrap();
        assert_eq!(EdeEntry::decode_payload(&payload).unwrap(), e);
    }

    #[test]
    fn bare_payload_is_two_bytes() {
        let e = EdeEntry::bare(EdeCode::DnssecBogus);
        let payload = e.encode_payload().unwrap();
        assert_eq!(payload, vec![0, 6]);
        assert_eq!(EdeEntry::decode_payload(&payload).unwrap(), e);
    }

    #[test]
    fn short_payload_rejected() {
        assert!(EdeEntry::decode_payload(&[0]).is_err());
    }

    #[test]
    fn invalid_utf8_is_lenient() {
        let decoded = EdeEntry::decode_payload(&[0, 6, 0xff, 0xfe]).unwrap();
        assert_eq!(decoded.code, EdeCode::DnssecBogus);
        assert!(!decoded.extra_text.is_empty());
    }
}
