//! Complete DNS message encoding and decoding.
//!
//! [`Message`] is the application-level view: the OPT pseudo-record is
//! lifted out of the additional section into [`Edns`], and the 12-bit
//! extended RCODE is presented as a single [`Rcode`].

use crate::edns::Edns;
use crate::error::WireError;
use crate::header::{Header, Opcode};
use crate::name::{Compressor, Name};
use crate::rcode::Rcode;
use crate::record::{Class, Record};
use crate::rrtype::RrType;

/// One entry of the question section.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RrType,
    /// Queried class.
    pub qclass: Class,
}

impl Question {
    /// An IN-class question.
    pub fn new(name: Name, qtype: RrType) -> Self {
        Question {
            name,
            qtype,
            qclass: Class::In,
        }
    }

    fn encode(&self, buf: &mut Vec<u8>, compressor: Option<&mut Compressor>) {
        self.name.encode(buf, compressor);
        buf.extend_from_slice(&self.qtype.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.qclass.to_u16().to_be_bytes());
    }

    fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let name = Name::decode(msg, pos)?;
        if *pos + 4 > msg.len() {
            return Err(WireError::Truncated {
                context: "question",
            });
        }
        let qtype = RrType::from_u16(u16::from_be_bytes([msg[*pos], msg[*pos + 1]]));
        let qclass = Class::from_u16(u16::from_be_bytes([msg[*pos + 2], msg[*pos + 3]]));
        *pos += 4;
        Ok(Question {
            name,
            qtype,
            qclass,
        })
    }
}

/// A decoded DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// QR bit: true for responses.
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// AA bit.
    pub authoritative: bool,
    /// TC bit.
    pub truncated: bool,
    /// RD bit.
    pub recursion_desired: bool,
    /// RA bit.
    pub recursion_available: bool,
    /// AD bit (RFC 4035).
    pub authentic_data: bool,
    /// CD bit (RFC 4035).
    pub checking_disabled: bool,
    /// Combined (12-bit) response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section (never contains OPT).
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section, OPT excluded.
    pub additionals: Vec<Record>,
    /// EDNS(0) state, if an OPT record was present / should be emitted.
    pub edns: Option<Edns>,
}

impl Default for Message {
    fn default() -> Self {
        Message {
            id: 0,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: None,
        }
    }
}

impl Message {
    /// Build a recursive query for `name`/`qtype` with EDNS and the DO
    /// bit set — the shape of every probe the paper's scanner sends.
    pub fn query(id: u16, name: Name, qtype: RrType) -> Self {
        Message {
            id,
            recursion_desired: true,
            questions: vec![Question::new(name, qtype)],
            edns: Some(Edns::with_do()),
            ..Default::default()
        }
    }

    /// Build a non-recursive (iterative) query, as a resolver sends to
    /// authoritative servers.
    pub fn iterative_query(id: u16, name: Name, qtype: RrType) -> Self {
        Message {
            id,
            recursion_desired: false,
            questions: vec![Question::new(name, qtype)],
            edns: Some(Edns::with_do()),
            ..Default::default()
        }
    }

    /// Start a response mirroring `query`'s ID, opcode, question, and RD
    /// bit.
    pub fn response_to(query: &Message) -> Self {
        Message {
            id: query.id,
            response: true,
            opcode: query.opcode,
            recursion_desired: query.recursion_desired,
            checking_disabled: query.checking_disabled,
            questions: query.questions.clone(),
            ..Default::default()
        }
    }

    /// The first (and in practice only) question.
    pub fn first_question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Iterate EDE entries attached to this message.
    pub fn ede_entries(&self) -> impl Iterator<Item = &crate::ede::EdeEntry> {
        self.edns.iter().flat_map(|e| e.ede_entries())
    }

    /// All EDE codes attached to this message, in wire order.
    pub fn ede_codes(&self) -> Vec<crate::ede::EdeCode> {
        self.ede_entries().map(|e| e.code).collect()
    }

    /// Encoded size in bytes (with name compression), or 0 when the
    /// message cannot be encoded at all.
    pub fn encoded_len(&self) -> usize {
        self.encode().map(|b| b.len()).unwrap_or(0)
    }

    /// The UDP payload size this message's sender can accept: the EDNS
    /// advertisement (floored at the RFC 6891 minimum of 512), or the
    /// classic 512-byte limit when the message carries no OPT record.
    pub fn advertised_payload_size(&self) -> u16 {
        self.edns
            .as_ref()
            .map(|e| e.udp_payload_size.max(512))
            .unwrap_or(512)
    }

    /// A truncated (TC=1) copy of this response, as an authoritative
    /// server returns one when the full answer exceeds the negotiated
    /// UDP payload size: header, question and OPT survive; the answer,
    /// authority and additional sections are dropped (partial sections
    /// must not be consumed — the client re-asks over a stream).
    pub fn truncated_copy(&self) -> Message {
        Message {
            truncated: true,
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            ..self.clone()
        }
    }

    /// Encode to wire format with name compression.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = Vec::with_capacity(512);
        let counts_ok = |n: usize| -> Result<u16, WireError> {
            u16::try_from(n).map_err(|_| WireError::BadCount)
        };
        let header = Header {
            id: self.id,
            response: self.response,
            opcode: self.opcode,
            authoritative: self.authoritative,
            truncated: self.truncated,
            recursion_desired: self.recursion_desired,
            recursion_available: self.recursion_available,
            authentic_data: self.authentic_data,
            checking_disabled: self.checking_disabled,
            rcode_low: self.rcode.header_bits(),
            counts: [
                counts_ok(self.questions.len())?,
                counts_ok(self.answers.len())?,
                counts_ok(self.authorities.len())?,
                counts_ok(self.additionals.len() + usize::from(self.edns.is_some()))?,
            ],
        };
        header.encode(&mut buf);

        let mut compressor = Compressor::new();
        for q in &self.questions {
            q.encode(&mut buf, Some(&mut compressor));
        }
        for r in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            r.encode(&mut buf, Some(&mut compressor));
        }
        if let Some(edns) = &self.edns {
            edns.encode_with_ext_rcode(&mut buf, self.rcode.extended_bits())?;
        }
        Ok(buf)
    }

    /// Decode from wire format.
    pub fn decode(msg: &[u8]) -> Result<Self, WireError> {
        let header = Header::decode(msg)?;
        let mut pos = Header::LEN;

        let mut questions = Vec::with_capacity(usize::from(header.counts[0]));
        for _ in 0..header.counts[0] {
            questions.push(Question::decode(msg, &mut pos)?);
        }

        let mut sections: [Vec<Record>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut edns: Option<Edns> = None;
        let mut ext_rcode_bits: u8 = 0;
        for (section_idx, section) in sections.iter_mut().enumerate() {
            for _ in 0..header.counts[section_idx + 1] {
                // Peek the type to intercept OPT before typed decoding.
                let name_start = pos;
                let name = Name::decode(msg, &mut pos)?;
                if pos + 10 > msg.len() {
                    return Err(WireError::Truncated {
                        context: "record fixed header",
                    });
                }
                let rtype = RrType::from_u16(u16::from_be_bytes([msg[pos], msg[pos + 1]]));
                if rtype == RrType::Opt {
                    // RFC 6891: OPT must be in the additional section and
                    // appear at most once.
                    if section_idx != 2 || edns.is_some() || !name.is_root() {
                        return Err(WireError::BadOpt);
                    }
                    let class_field = u16::from_be_bytes([msg[pos + 2], msg[pos + 3]]);
                    let ttl_field = u32::from_be_bytes([
                        msg[pos + 4],
                        msg[pos + 5],
                        msg[pos + 6],
                        msg[pos + 7],
                    ]);
                    let rdlen = usize::from(u16::from_be_bytes([msg[pos + 8], msg[pos + 9]]));
                    pos += 10;
                    if pos + rdlen > msg.len() {
                        return Err(WireError::Truncated {
                            context: "OPT rdata",
                        });
                    }
                    let (parsed, ext) =
                        Edns::decode(class_field, ttl_field, &msg[pos..pos + rdlen])?;
                    pos += rdlen;
                    edns = Some(parsed);
                    ext_rcode_bits = ext;
                } else {
                    let mut p = name_start;
                    section.push(Record::decode(msg, &mut p)?);
                    pos = p;
                }
            }
        }
        let [answers, authorities, additionals] = sections;

        Ok(Message {
            id: header.id,
            response: header.response,
            opcode: header.opcode,
            authoritative: header.authoritative,
            truncated: header.truncated,
            recursion_desired: header.recursion_desired,
            recursion_available: header.recursion_available,
            authentic_data: header.authentic_data,
            checking_disabled: header.checking_disabled,
            rcode: Rcode::from_parts(header.rcode_low, ext_rcode_bits),
            questions,
            answers,
            authorities,
            additionals,
            edns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ede::{EdeCode, EdeEntry};
    use crate::rdata::Rdata;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, n("valid.extended-dns-errors.com"), RrType::A);
        let wire = q.encode().unwrap();
        let decoded = Message::decode(&wire).unwrap();
        assert_eq!(decoded, q);
        assert!(decoded.edns.unwrap().dnssec_ok);
    }

    #[test]
    fn response_with_ede_roundtrip() {
        let q = Message::query(7, n("allow-query-none.extended-dns-errors.com"), RrType::A);
        let mut r = Message::response_to(&q);
        r.rcode = Rcode::ServFail;
        r.recursion_available = true;
        let mut edns = Edns::default();
        edns.push_ede(EdeEntry::bare(EdeCode::DnskeyMissing));
        edns.push_ede(EdeEntry::bare(EdeCode::NoReachableAuthority));
        edns.push_ede(EdeEntry::with_text(
            EdeCode::NetworkError,
            "192.0.2.1:53 timeout",
        ));
        r.edns = Some(edns);

        let wire = r.encode().unwrap();
        let decoded = Message::decode(&wire).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(
            decoded.ede_codes(),
            vec![
                EdeCode::DnskeyMissing,
                EdeCode::NoReachableAuthority,
                EdeCode::NetworkError
            ]
        );
    }

    #[test]
    fn extended_rcode_roundtrip() {
        let q = Message::query(1, n("example.com"), RrType::A);
        let mut r = Message::response_to(&q);
        r.edns = Some(Edns::default());
        r.rcode = Rcode::BadVers;
        let decoded = Message::decode(&r.encode().unwrap()).unwrap();
        assert_eq!(decoded.rcode, Rcode::BadVers);
    }

    #[test]
    fn full_sections_roundtrip() {
        let q = Message::query(42, n("www.example.com"), RrType::A);
        let mut r = Message::response_to(&q);
        r.authoritative = true;
        r.answers.push(Record::new(
            n("www.example.com"),
            300,
            Rdata::A("192.0.2.80".parse().unwrap()),
        ));
        r.authorities.push(Record::new(
            n("example.com"),
            3600,
            Rdata::Ns(n("ns1.example.com")),
        ));
        r.additionals.push(Record::new(
            n("ns1.example.com"),
            3600,
            Rdata::A("192.0.2.53".parse().unwrap()),
        ));
        r.edns = Some(Edns::default());
        let decoded = Message::decode(&r.encode().unwrap()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn compression_shrinks_messages() {
        let mut m = Message::query(1, n("a.example.com"), RrType::A);
        for i in 0..5 {
            m.additionals.push(Record::new(
                n(&format!("ns{i}.example.com")),
                60,
                Rdata::A("192.0.2.1".parse().unwrap()),
            ));
        }
        let wire = m.encode().unwrap();
        // Uncompressed, each additional owner name would repeat
        // ".example.com" (13 bytes); compressed they share a pointer.
        let uncompressed_estimate = 12 + (15 + 4) + 5 * (17 + 10 + 4) + 11;
        assert!(wire.len() < uncompressed_estimate);
        assert_eq!(Message::decode(&wire).unwrap(), m);
    }

    #[test]
    fn double_opt_rejected() {
        let q = Message::query(1, n("example.com"), RrType::A);
        let mut wire = q.encode().unwrap();
        // Duplicate the OPT record bytes (last 11 bytes) and bump ARCOUNT.
        let opt = wire[wire.len() - 11..].to_vec();
        wire.extend_from_slice(&opt);
        wire[11] = 2;
        assert_eq!(Message::decode(&wire), Err(WireError::BadOpt));
    }

    #[test]
    fn opt_outside_additional_rejected() {
        // Hand-build a message claiming an OPT in the answer section.
        let mut wire = Vec::new();
        let header = Header {
            id: 1,
            response: true,
            counts: [0, 1, 0, 0],
            ..Default::default()
        };
        header.encode(&mut wire);
        Edns::default().encode(&mut wire).unwrap();
        assert_eq!(Message::decode(&wire), Err(WireError::BadOpt));
    }

    #[test]
    fn count_overruns_rejected() {
        let q = Message::query(1, n("example.com"), RrType::A);
        let mut wire = q.encode().unwrap();
        wire[5] = 9; // QDCOUNT = 9, but only one question present
        assert!(Message::decode(&wire).is_err());
    }

    #[test]
    fn truncated_copy_keeps_header_and_question_only() {
        let q = Message::query(7, n("big.example.com"), RrType::A);
        let mut resp = Message::response_to(&q);
        resp.edns = Some(Edns::default());
        for i in 0..40 {
            resp.answers.push(Record::new(
                n(&format!("a{i}.big.example.com")),
                60,
                Rdata::Txt(vec![vec![0u8; 64]]),
            ));
        }
        let full = resp.encoded_len();
        let tc = resp.truncated_copy();
        assert!(tc.truncated);
        assert!(tc.answers.is_empty() && tc.authorities.is_empty());
        assert_eq!(tc.questions, resp.questions);
        assert!(tc.encoded_len() < full);
        // Round-trips with the TC bit intact.
        let wire = tc.encode().unwrap();
        assert!(Message::decode(&wire).unwrap().truncated);
    }

    #[test]
    fn advertised_payload_size_floors_at_512() {
        let mut q = Message::query(1, n("example.com"), RrType::A);
        assert_eq!(q.advertised_payload_size(), 1232);
        q.edns.as_mut().unwrap().udp_payload_size = 100;
        assert_eq!(q.advertised_payload_size(), 512);
        q.edns = None;
        assert_eq!(q.advertised_payload_size(), 512);
    }
}
