//! Domain names: parsing, wire codec with compression, canonical ordering.
//!
//! Names are stored in canonical (lowercased) form. DNS comparisons are
//! case-insensitive everywhere this reproduction needs them, and DNSSEC
//! canonical form (RFC 4034 §6.2) lowercases names before hashing and
//! signing, so normalizing at construction removes a whole class of
//! case-handling bugs at zero modeling cost.

use crate::error::WireError;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Maximum length of one label in octets.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name on the wire (labels + length octets + root).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified domain name.
///
/// The root name has zero labels. Labels are arbitrary byte strings
/// (lowercased ASCII at rest), ordered leaf-first: `www.example.com` is
/// stored as `["www", "example", "com"]`.
///
/// The label list is behind an `Arc`: names appear in every record,
/// question, cache key, and zone entry, and are cloned on all of those
/// paths, so a clone must be a refcount bump rather than one heap
/// allocation per label. Names are immutable after construction, so
/// the sharing is never observable.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Name {
    labels: Arc<[Box<[u8]>]>,
}

impl Name {
    /// The root name `.`.
    pub fn root() -> Self {
        // Shared empty slice: the root is constructed often (zone walks,
        // parent() chains ending at the root zone) and needs no storage.
        static EMPTY: std::sync::OnceLock<Arc<[Box<[u8]>]>> = std::sync::OnceLock::new();
        Name {
            labels: Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new()))),
        }
    }

    /// A deep copy with freshly allocated label storage, sharing nothing
    /// with `self`.
    ///
    /// A plain `clone()` bumps the `Arc` refcount, which is what hot
    /// paths want — but it also keeps the *original* allocation alive.
    /// Long-lived holders (caches, logs) that clone names out of
    /// short-lived working sets (a parsed response, a freshly built
    /// zone) end up pinning those transient heap regions, fragmenting
    /// the allocator. Such holders should store `name.detached()`
    /// instead: same value, equal and hashing identically, but backed
    /// by allocations made at detach time.
    pub fn detached(&self) -> Self {
        if self.labels.is_empty() {
            return Name::root();
        }
        Name {
            labels: self
                .labels
                .iter()
                .map(|l| l.to_vec().into_boxed_slice())
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Parse a dotted textual name. Accepts an optional trailing dot; all
    /// names are treated as fully qualified. `"."` and `""` both give the
    /// root. Escapes are not supported (the testbed never needs them).
    pub fn parse(text: &str) -> Result<Self, WireError> {
        let trimmed = text.strip_suffix('.').unwrap_or(text);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for label in trimmed.split('.') {
            if label.is_empty() || label.len() > MAX_LABEL_LEN {
                return Err(WireError::BadLabel(label.to_string()));
            }
            labels.push(label.to_ascii_lowercase().into_bytes().into_boxed_slice());
        }
        let name = Name {
            labels: labels.into(),
        };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong);
        }
        Ok(name)
    }

    /// Build a name from raw label byte strings (leaf-first).
    pub fn from_labels<I, L>(labels: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() || l.len() > MAX_LABEL_LEN {
                return Err(WireError::BadLabel(String::from_utf8_lossy(l).into_owned()));
            }
            out.push(l.to_ascii_lowercase().into_boxed_slice());
        }
        let name = Name { labels: out.into() };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong);
        }
        Ok(name)
    }

    /// Prepend a label, producing the child `label.self`.
    pub fn child(&self, label: &str) -> Result<Self, WireError> {
        if label.is_empty() || label.len() > MAX_LABEL_LEN {
            return Err(WireError::BadLabel(label.to_string()));
        }
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_ascii_lowercase().into_bytes().into_boxed_slice());
        labels.extend(self.labels.iter().cloned());
        let name = Name {
            labels: labels.into(),
        };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong);
        }
        Ok(name)
    }

    /// The name with the leftmost label removed; `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec().into(),
            })
        }
    }

    /// Number of labels (0 for the root). This is the RRSIG `labels` field
    /// value for non-wildcard owner names.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterate over labels, leaf-first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_ref())
    }

    /// The leftmost (leaf) label, if any.
    pub fn first_label(&self) -> Option<&[u8]> {
        self.labels.first().map(|l| l.as_ref())
    }

    /// True if `self` equals `ancestor` or is underneath it.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        let n = ancestor.labels.len();
        if self.labels.len() < n {
            return false;
        }
        self.labels[self.labels.len() - n..] == ancestor.labels[..]
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of the uncompressed wire encoding (label lengths + root).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// Uncompressed canonical wire form (RFC 4034 §6.2): lowercase labels,
    /// no compression. This is the form hashed by NSEC3 and signed by
    /// RRSIG.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        for label in self.labels.iter() {
            out.push(label.len() as u8);
            out.extend_from_slice(label);
        }
        out.push(0);
        out
    }

    /// Encode into `buf`, compressing against previously-encoded names
    /// recorded in `compressor`. Pass `None` to force uncompressed output
    /// (required inside DNSSEC RDATA).
    pub fn encode(&self, buf: &mut Vec<u8>, mut compressor: Option<&mut Compressor>) {
        // Walk suffixes from the full name down; emit a pointer at the
        // first suffix the compressor has seen, else emit the label and
        // record the suffix position.
        for skip in 0..self.labels.len() {
            let suffix_wire = Self::suffix_key(&self.labels[skip..]);
            if let Some(c) = compressor.as_deref_mut() {
                if let Some(&offset) = c.seen.get(&suffix_wire) {
                    // 14-bit pointer: 0b11 prefix.
                    buf.extend_from_slice(&(0xC000u16 | offset).to_be_bytes());
                    return;
                }
                // Only offsets that fit in 14 bits may be targets.
                if buf.len() < 0x3FFF {
                    c.seen.insert(suffix_wire, buf.len() as u16);
                }
            }
            let label = &self.labels[skip];
            buf.push(label.len() as u8);
            buf.extend_from_slice(label);
        }
        buf.push(0);
    }

    fn suffix_key(labels: &[Box<[u8]>]) -> Vec<u8> {
        let mut key = Vec::new();
        for l in labels {
            key.push(l.len() as u8);
            key.extend_from_slice(l);
        }
        key
    }

    /// Decode a (possibly compressed) name from `msg` starting at
    /// `*pos`, advancing `*pos` past the name's in-place bytes.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let mut labels = Vec::new();
        let mut cursor = *pos;
        let mut jumped = false;
        let mut total_len = 0usize;
        // Each pointer must strictly decrease, which bounds the walk.
        let mut last_pointer = msg.len();

        loop {
            let len_byte =
                *msg.get(cursor)
                    .ok_or(WireError::Truncated { context: "name" })? as usize;
            match len_byte {
                0 => {
                    if !jumped {
                        *pos = cursor + 1;
                    }
                    return Ok(Name {
                        labels: labels.into(),
                    });
                }
                1..=MAX_LABEL_LEN => {
                    let start = cursor + 1;
                    let end = start + len_byte;
                    let label = msg
                        .get(start..end)
                        .ok_or(WireError::Truncated { context: "label" })?;
                    total_len += len_byte + 1;
                    if total_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    labels.push(label.to_ascii_lowercase().into_boxed_slice());
                    cursor = end;
                }
                l if l & 0xC0 == 0xC0 => {
                    let second = *msg
                        .get(cursor + 1)
                        .ok_or(WireError::Truncated { context: "pointer" })?
                        as usize;
                    let target = ((l & 0x3F) << 8) | second;
                    // A pointer must reference earlier message bytes
                    // (no forward jumps), and successive pointer targets
                    // must strictly decrease (no loops).
                    if target >= cursor || target >= last_pointer {
                        return Err(WireError::BadPointer);
                    }
                    last_pointer = target;
                    if !jumped {
                        *pos = cursor + 2;
                        jumped = true;
                    }
                    cursor = target;
                }
                _ => return Err(WireError::BadLabel(format!("length byte {len_byte:#x}"))),
            }
        }
    }

    /// Deterministic 64-bit FNV-1a hash over the canonical label bytes.
    ///
    /// Unlike `Hash`/`HashMap`'s SipHash (randomized per process in
    /// general-purpose hashers), this value is stable across runs and
    /// processes, and it is computed without allocating the wire form —
    /// sharded stores (the resolver cache, flap tables) use it both to
    /// pick a shard and as the lookup key, so a probe never has to clone
    /// the name.
    pub fn shard_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for label in self.labels.iter() {
            h ^= label.len() as u64;
            h = h.wrapping_mul(0x100000001b3);
            for &b in label.iter() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// RFC 4034 §6.1 canonical ordering: compare label-by-label from the
    /// *rightmost* (TLD) label, each label as raw lowercase bytes.
    pub fn canonical_cmp(&self, other: &Name) -> Ordering {
        let mut a = self.labels.iter().rev();
        let mut b = other.labels.iter().rev();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(x), Some(y)) => match x.cmp(y) {
                    Ordering::Equal => continue,
                    ord => return ord,
                },
            }
        }
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in self.labels.iter() {
            for &b in label.iter() {
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{b:03}")?;
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    // Delegate to Display: names read better dotted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// Compression state shared across one message encoding.
#[derive(Default)]
pub struct Compressor {
    seen: std::collections::HashMap<Vec<u8>, u16>,
}

impl Compressor {
    /// Fresh, empty compression table.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("www.Example.COM").to_string(), "www.example.com.");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
        assert_eq!(n("example.com.").to_string(), "example.com.");
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(Name::parse("a..b").is_err());
        let long = "x".repeat(64);
        assert!(Name::parse(&long).is_err());
        assert!(Name::parse(&"y.".repeat(130)).is_err());
    }

    #[test]
    fn wire_roundtrip_uncompressed() {
        let name = n("a.bc.def.example.com");
        let wire = name.to_wire();
        let mut pos = 0;
        assert_eq!(Name::decode(&wire, &mut pos).unwrap(), name);
        assert_eq!(pos, wire.len());
        assert_eq!(wire.len(), name.wire_len());
    }

    #[test]
    fn root_wire_form() {
        assert_eq!(Name::root().to_wire(), vec![0]);
        let mut pos = 0;
        assert_eq!(Name::decode(&[0], &mut pos).unwrap(), Name::root());
    }

    #[test]
    fn compression_shares_suffixes() {
        let mut buf = Vec::new();
        let mut c = Compressor::new();
        n("mail.example.com").encode(&mut buf, Some(&mut c));
        let first_len = buf.len();
        n("www.example.com").encode(&mut buf, Some(&mut c));
        // Second name: "www" label (4 bytes) + 2-byte pointer.
        assert_eq!(buf.len(), first_len + 4 + 2);

        let mut pos = 0;
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), n("mail.example.com"));
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), n("www.example.com"));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn identical_name_becomes_pure_pointer() {
        let mut buf = Vec::new();
        let mut c = Compressor::new();
        n("example.com").encode(&mut buf, Some(&mut c));
        let first_len = buf.len();
        n("example.com").encode(&mut buf, Some(&mut c));
        assert_eq!(buf.len(), first_len + 2);
    }

    #[test]
    fn pointer_loops_rejected() {
        // Pointer at offset 0 pointing to itself.
        let msg = [0xC0, 0x00];
        let mut pos = 0;
        assert_eq!(Name::decode(&msg, &mut pos), Err(WireError::BadPointer));
    }

    #[test]
    fn forward_pointers_rejected() {
        let msg = [0xC0, 0x04, 0, 0, 1, b'a', 0];
        let mut pos = 0;
        assert_eq!(Name::decode(&msg, &mut pos), Err(WireError::BadPointer));
    }

    #[test]
    fn canonical_ordering_rfc4034_example() {
        // RFC 4034 §6.1 example order.
        let order = [
            "example",
            "a.example",
            "yljkjljk.a.example",
            "Z.a.example",
            "zABC.a.EXAMPLE",
            "z.example",
        ];
        let names: Vec<Name> = order.iter().map(|s| n(s)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names);
    }

    #[test]
    fn subdomain_relations() {
        assert!(n("www.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&Name::root()));
        assert!(!n("example.com").is_subdomain_of(&n("example.org")));
        assert!(!n("xexample.com").is_subdomain_of(&n("example.com")));
    }

    #[test]
    fn child_and_parent() {
        let base = n("example.com");
        let child = base.child("no-ds").unwrap();
        assert_eq!(child.to_string(), "no-ds.example.com.");
        assert_eq!(child.parent().unwrap(), base);
        assert_eq!(Name::root().parent(), None);
        assert_eq!(child.label_count(), 3);
    }
}
