//! EDNS(0) — the OPT pseudo-record (RFC 6891) and its options.
//!
//! The OPT record reuses RR framing for non-RR purposes: the owner is the
//! root, the CLASS field carries the requester's UDP payload size, and the
//! TTL field packs `EXTENDED-RCODE ‖ VERSION ‖ DO ‖ Z`. RDATA is a list of
//! `{OPTION-CODE, OPTION-LENGTH, OPTION-DATA}` triples. Extended DNS
//! Errors ride in option code 15.

use crate::ede::{EdeEntry, EDE_OPTION_CODE};
use crate::error::WireError;
use crate::name::Name;
use crate::rrtype::RrType;

/// Default EDNS payload size we advertise.
pub const DEFAULT_UDP_PAYLOAD: u16 = 1232;

/// One EDNS option.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EdnsOption {
    /// RFC 8914 Extended DNS Error.
    Ede(EdeEntry),
    /// Any other option, kept opaque.
    Unknown {
        /// OPTION-CODE.
        code: u16,
        /// OPTION-DATA.
        data: Vec<u8>,
    },
}

impl EdnsOption {
    fn code(&self) -> u16 {
        match self {
            EdnsOption::Ede(_) => EDE_OPTION_CODE,
            EdnsOption::Unknown { code, .. } => *code,
        }
    }
}

/// Decoded EDNS(0) state for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Requester's maximum UDP payload size (OPT CLASS field).
    pub udp_payload_size: u16,
    /// EDNS version; only 0 is defined.
    pub version: u8,
    /// DNSSEC OK: the client wants DNSSEC records in the response.
    pub dnssec_ok: bool,
    /// Options, in wire order.
    pub options: Vec<EdnsOption>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: DEFAULT_UDP_PAYLOAD,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// A plain EDNS block with the DO bit set (what a validating resolver
    /// or the paper's scanner sends).
    pub fn with_do() -> Self {
        Edns {
            dnssec_ok: true,
            ..Default::default()
        }
    }

    /// Iterate the EDE entries present, in order.
    pub fn ede_entries(&self) -> impl Iterator<Item = &EdeEntry> {
        self.options.iter().filter_map(|o| match o {
            EdnsOption::Ede(e) => Some(e),
            EdnsOption::Unknown { .. } => None,
        })
    }

    /// Append an EDE entry.
    pub fn push_ede(&mut self, entry: EdeEntry) {
        self.options.push(EdnsOption::Ede(entry));
    }

    /// Encode as a complete OPT record.
    pub fn encode(&self, buf: &mut Vec<u8>) -> Result<(), WireError> {
        Name::root().encode(buf, None);
        buf.extend_from_slice(&RrType::Opt.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.udp_payload_size.to_be_bytes());
        // The extended-RCODE byte is owned by the message layer (it is
        // part of the combined Rcode); encode_with_ext_rcode fills it.
        buf.push(0);
        buf.push(self.version);
        let flags: u16 = if self.dnssec_ok { 0x8000 } else { 0 };
        buf.extend_from_slice(&flags.to_be_bytes());
        let rdlen_at = buf.len();
        buf.extend_from_slice(&[0, 0]);
        for opt in &self.options {
            let payload = match opt {
                EdnsOption::Ede(e) => e.encode_payload()?,
                EdnsOption::Unknown { data, .. } => data.clone(),
            };
            if payload.len() > usize::from(u16::MAX) {
                return Err(WireError::FieldOverflow("EDNS option"));
            }
            buf.extend_from_slice(&opt.code().to_be_bytes());
            buf.extend_from_slice(&(payload.len() as u16).to_be_bytes());
            buf.extend_from_slice(&payload);
        }
        let rdlen = buf.len() - rdlen_at - 2;
        if rdlen > usize::from(u16::MAX) {
            return Err(WireError::FieldOverflow("OPT RDATA"));
        }
        buf[rdlen_at..rdlen_at + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
        Ok(())
    }

    /// Encode as a complete OPT record, with the extended-RCODE byte of
    /// the TTL field set to `ext_rcode` (the high 8 bits of the combined
    /// response code).
    pub fn encode_with_ext_rcode(&self, buf: &mut Vec<u8>, ext_rcode: u8) -> Result<(), WireError> {
        let at = buf.len();
        self.encode(buf)?;
        // Patch TTL byte 0 (offset: root(1) + type(2) + class(2) = 5).
        buf[at + 5] = ext_rcode;
        Ok(())
    }

    /// Decode the body of an OPT record whose fixed RR fields have
    /// already been read, returning the EDNS state and the extended-RCODE
    /// bits from the TTL field. `class_field` and `ttl_field` are the raw
    /// CLASS and TTL values; `rdata` is the option list.
    pub fn decode(class_field: u16, ttl_field: u32, rdata: &[u8]) -> Result<(Self, u8), WireError> {
        let mut options = Vec::new();
        let mut pos = 0;
        while pos < rdata.len() {
            if pos + 4 > rdata.len() {
                return Err(WireError::Truncated {
                    context: "EDNS option header",
                });
            }
            let code = u16::from_be_bytes([rdata[pos], rdata[pos + 1]]);
            let len = usize::from(u16::from_be_bytes([rdata[pos + 2], rdata[pos + 3]]));
            pos += 4;
            if pos + len > rdata.len() {
                return Err(WireError::Truncated {
                    context: "EDNS option data",
                });
            }
            let data = &rdata[pos..pos + len];
            pos += len;
            options.push(if code == EDE_OPTION_CODE {
                EdnsOption::Ede(EdeEntry::decode_payload(data)?)
            } else {
                EdnsOption::Unknown {
                    code,
                    data: data.to_vec(),
                }
            });
        }
        Ok((
            Edns {
                udp_payload_size: class_field,
                version: ((ttl_field >> 16) & 0xFF) as u8,
                dnssec_ok: ttl_field & 0x8000 != 0,
                options,
            },
            (ttl_field >> 24) as u8,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ede::EdeCode;
    use crate::record::Class;

    /// Encode then re-parse through the raw RR framing.
    fn roundtrip(edns: &Edns) -> Edns {
        let mut buf = Vec::new();
        edns.encode(&mut buf).unwrap();
        // Manually unpack the RR framing: root name (1) + type (2).
        assert_eq!(buf[0], 0);
        assert_eq!(u16::from_be_bytes([buf[1], buf[2]]), 41);
        let class = u16::from_be_bytes([buf[3], buf[4]]);
        let ttl = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]);
        let rdlen = usize::from(u16::from_be_bytes([buf[9], buf[10]]));
        assert_eq!(buf.len(), 11 + rdlen);
        Edns::decode(class, ttl, &buf[11..]).unwrap().0
    }

    #[test]
    fn plain_roundtrip() {
        let e = Edns::with_do();
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn ede_options_roundtrip() {
        let mut e = Edns::default();
        e.push_ede(EdeEntry::bare(EdeCode::NoReachableAuthority));
        e.push_ede(EdeEntry::with_text(
            EdeCode::NetworkError,
            "203.0.113.5:53 rcode=REFUSED for example.com A",
        ));
        let decoded = roundtrip(&e);
        assert_eq!(decoded, e);
        assert_eq!(decoded.ede_entries().count(), 2);
    }

    #[test]
    fn unknown_options_preserved() {
        let mut e = Edns::default();
        e.options.push(EdnsOption::Unknown {
            code: 10,
            data: vec![1, 2, 3, 4, 5, 6, 7, 8],
        });
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn extended_rcode_packing() {
        let e = Edns::default();
        let mut buf = Vec::new();
        e.encode_with_ext_rcode(&mut buf, 1).unwrap();
        let class = u16::from_be_bytes([buf[3], buf[4]]);
        let ttl = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]);
        let (got, ext) = Edns::decode(class, ttl, &buf[11..]).unwrap();
        assert_eq!(ext, 1);
        assert_eq!(got.version, 0);
    }

    #[test]
    fn class_is_payload_size() {
        // Sanity-check the field reuse against the Class enum: 1232 is not
        // a class, it is a payload size.
        assert_eq!(Class::from_u16(DEFAULT_UDP_PAYLOAD).to_u16(), 1232);
    }

    #[test]
    fn truncated_option_rejected() {
        assert!(Edns::decode(512, 0, &[0, 15, 0, 10, 0]).is_err());
        assert!(Edns::decode(512, 0, &[0, 15, 0]).is_err());
    }
}
