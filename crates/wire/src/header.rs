//! The 12-byte DNS message header (RFC 1035 §4.1.1).

use crate::error::WireError;
use crate::rcode::Rcode;

/// Query/operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// Anything else.
    Other(u8),
}

impl Opcode {
    /// Numeric opcode.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(v) => v & 0x0F,
        }
    }

    /// Decode a numeric opcode.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Other(other),
        }
    }
}

/// Decoded header. The RCODE stored here is only the low 4 bits; the
/// message layer merges in the EDNS extension to produce [`Rcode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Transaction identifier.
    pub id: u16,
    /// True in responses (QR bit).
    pub response: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative Answer.
    pub authoritative: bool,
    /// TrunCation.
    pub truncated: bool,
    /// Recursion Desired.
    pub recursion_desired: bool,
    /// Recursion Available.
    pub recursion_available: bool,
    /// Authentic Data (RFC 4035): set by validating resolvers when all
    /// data in the answer and authority sections validated.
    pub authentic_data: bool,
    /// Checking Disabled (RFC 4035): set by clients to suppress
    /// validation.
    pub checking_disabled: bool,
    /// Low 4 bits of the response code.
    pub rcode_low: u8,
    /// Entry counts for the four sections.
    pub counts: [u16; 4],
}

impl Default for Header {
    fn default() -> Self {
        Header {
            id: 0,
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode_low: 0,
            counts: [0; 4],
        }
    }
}

impl Header {
    /// Wire size of the header.
    pub const LEN: usize = 12;

    /// Encode into 12 bytes.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_be_bytes());
        let mut b2: u8 = 0;
        if self.response {
            b2 |= 0x80;
        }
        b2 |= self.opcode.to_u8() << 3;
        if self.authoritative {
            b2 |= 0x04;
        }
        if self.truncated {
            b2 |= 0x02;
        }
        if self.recursion_desired {
            b2 |= 0x01;
        }
        let mut b3: u8 = 0;
        if self.recursion_available {
            b3 |= 0x80;
        }
        if self.authentic_data {
            b3 |= 0x20;
        }
        if self.checking_disabled {
            b3 |= 0x10;
        }
        b3 |= self.rcode_low & 0x0F;
        buf.push(b2);
        buf.push(b3);
        for c in self.counts {
            buf.extend_from_slice(&c.to_be_bytes());
        }
    }

    /// Decode from the first 12 bytes of `msg`.
    pub fn decode(msg: &[u8]) -> Result<Self, WireError> {
        if msg.len() < Self::LEN {
            return Err(WireError::Truncated { context: "header" });
        }
        let b2 = msg[2];
        let b3 = msg[3];
        Ok(Header {
            id: u16::from_be_bytes([msg[0], msg[1]]),
            response: b2 & 0x80 != 0,
            opcode: Opcode::from_u8(b2 >> 3),
            authoritative: b2 & 0x04 != 0,
            truncated: b2 & 0x02 != 0,
            recursion_desired: b2 & 0x01 != 0,
            recursion_available: b3 & 0x80 != 0,
            authentic_data: b3 & 0x20 != 0,
            checking_disabled: b3 & 0x10 != 0,
            rcode_low: b3 & 0x0F,
            counts: [
                u16::from_be_bytes([msg[4], msg[5]]),
                u16::from_be_bytes([msg[6], msg[7]]),
                u16::from_be_bytes([msg[8], msg[9]]),
                u16::from_be_bytes([msg[10], msg[11]]),
            ],
        })
    }

    /// Convenience: the low-bits RCODE as an [`Rcode`] (no EDNS merge).
    pub fn rcode(&self) -> Rcode {
        Rcode::from_parts(self.rcode_low, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_flags() {
        let h = Header {
            id: 0xBEEF,
            response: true,
            opcode: Opcode::Update,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            authentic_data: true,
            checking_disabled: true,
            rcode_low: 3,
            counts: [1, 2, 3, 4],
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), Header::LEN);
        assert_eq!(Header::decode(&buf).unwrap(), h);
    }

    #[test]
    fn default_is_query() {
        let mut buf = Vec::new();
        Header::default().encode(&mut buf);
        let h = Header::decode(&buf).unwrap();
        assert!(!h.response);
        assert_eq!(h.opcode, Opcode::Query);
        assert_eq!(h.rcode(), Rcode::NoError);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Header::decode(&[0; 11]).is_err());
    }

    #[test]
    fn z_bit_ignored() {
        // Bit 6 of byte 3 (the reserved Z bit) must not corrupt decoding.
        let mut buf = Vec::new();
        Header::default().encode(&mut buf);
        buf[3] |= 0x40;
        let h = Header::decode(&buf).unwrap();
        assert_eq!(h, Header::default());
    }
}
