//! Resource records and the CLASS registry.

use crate::error::WireError;
use crate::name::{Compressor, Name};
use crate::rdata::Rdata;
use crate::rrtype::RrType;
use std::fmt;

/// DNS CLASS values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// The Internet.
    In,
    /// CHAOS (used by `version.bind` style queries).
    Ch,
    /// QCLASS ANY.
    Any,
    /// Anything else.
    Other(u16),
}

impl Class {
    /// Numeric class.
    pub fn to_u16(self) -> u16 {
        match self {
            Class::In => 1,
            Class::Ch => 3,
            Class::Any => 255,
            Class::Other(v) => v,
        }
    }

    /// Decode a numeric class.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => Class::In,
            3 => Class::Ch,
            255 => Class::Any,
            other => Class::Other(other),
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Class::In => write!(f, "IN"),
            Class::Ch => write!(f, "CH"),
            Class::Any => write!(f, "ANY"),
            Class::Other(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// One resource record (owner, class, TTL, typed RDATA).
///
/// The OPT pseudo-record is *not* represented here — the message layer
/// lifts it into [`crate::edns::Edns`] so that application code never sees
/// it as a record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (IN for everything in this study).
    pub class: Class,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed payload; also determines the RR TYPE on the wire.
    pub rdata: Rdata,
}

impl Record {
    /// Construct an IN-class record.
    pub fn new(name: Name, ttl: u32, rdata: Rdata) -> Self {
        Record {
            name,
            class: Class::In,
            ttl,
            rdata,
        }
    }

    /// The RR TYPE (derived from the RDATA variant).
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }

    /// A deep copy sharing no name storage with `self` — for long-lived
    /// holders like caches; see [`Name::detached`] for the rationale.
    pub fn detached(&self) -> Self {
        Record {
            name: self.name.detached(),
            class: self.class,
            ttl: self.ttl,
            rdata: self.rdata.detached(),
        }
    }

    /// Encode including the owner name and RDLENGTH framing.
    pub fn encode(&self, buf: &mut Vec<u8>, mut compressor: Option<&mut Compressor>) {
        self.name.encode(buf, compressor.as_deref_mut());
        buf.extend_from_slice(&self.rtype().to_u16().to_be_bytes());
        buf.extend_from_slice(&self.class.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.ttl.to_be_bytes());
        let rdlen_at = buf.len();
        buf.extend_from_slice(&[0, 0]);
        self.rdata.encode(buf, compressor);
        let rdlen = (buf.len() - rdlen_at - 2) as u16;
        buf[rdlen_at..rdlen_at + 2].copy_from_slice(&rdlen.to_be_bytes());
    }

    /// Decode one record at `msg[*pos..]`, advancing `*pos`.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let name = Name::decode(msg, pos)?;
        if *pos + 10 > msg.len() {
            return Err(WireError::Truncated {
                context: "record fixed header",
            });
        }
        let rtype = RrType::from_u16(u16::from_be_bytes([msg[*pos], msg[*pos + 1]]));
        let class = Class::from_u16(u16::from_be_bytes([msg[*pos + 2], msg[*pos + 3]]));
        let ttl = u32::from_be_bytes([msg[*pos + 4], msg[*pos + 5], msg[*pos + 6], msg[*pos + 7]]);
        let rdlen = usize::from(u16::from_be_bytes([msg[*pos + 8], msg[*pos + 9]]));
        *pos += 10;
        let rdata = Rdata::decode(msg, pos, rdlen, rtype)?;
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {:?}",
            self.name,
            self.ttl,
            self.class,
            self.rtype(),
            self.rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_roundtrip() {
        for v in [1u16, 3, 255, 4, 42] {
            assert_eq!(Class::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn record_roundtrip() {
        let rec = Record::new(
            Name::parse("www.example.com").unwrap(),
            3600,
            Rdata::A("192.0.2.7".parse().unwrap()),
        );
        let mut buf = Vec::new();
        rec.encode(&mut buf, None);
        let mut pos = 0;
        assert_eq!(Record::decode(&buf, &mut pos).unwrap(), rec);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn record_roundtrip_with_compression() {
        let a = Record::new(
            Name::parse("ns1.example.com").unwrap(),
            60,
            Rdata::Ns(Name::parse("ns2.example.com").unwrap()),
        );
        let mut buf = Vec::new();
        let mut c = Compressor::new();
        a.encode(&mut buf, Some(&mut c));
        a.encode(&mut buf, Some(&mut c));
        let mut pos = 0;
        assert_eq!(Record::decode(&buf, &mut pos).unwrap(), a);
        assert_eq!(Record::decode(&buf, &mut pos).unwrap(), a);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_record_rejected() {
        let rec = Record::new(
            Name::parse("x.org").unwrap(),
            1,
            Rdata::Txt(vec![b"abc".to_vec()]),
        );
        let mut buf = Vec::new();
        rec.encode(&mut buf, None);
        for cut in 1..buf.len() {
            let mut pos = 0;
            assert!(
                Record::decode(&buf[..cut], &mut pos).is_err(),
                "cut at {cut} should fail"
            );
        }
    }
}
