//! Typed RDATA for every record type the study exercises.

use crate::error::WireError;
use crate::name::{Compressor, Name};
use crate::rrtype::RrType;
use std::collections::BTreeSet;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// SOA RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Soa {
    /// Primary master name.
    pub mname: Name,
    /// Responsible mailbox name.
    pub rname: Name,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval.
    pub refresh: u32,
    /// Retry interval.
    pub retry: u32,
    /// Expiry interval.
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

/// RRSIG RDATA fields (RFC 4034 §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rrsig {
    /// Type of the RRset this signature covers.
    pub type_covered: RrType,
    /// Signing algorithm number.
    pub algorithm: u8,
    /// Label count of the owner name (wildcard detection).
    pub labels: u8,
    /// TTL of the covered RRset at signing time.
    pub original_ttl: u32,
    /// Signature expiration, seconds since the epoch.
    pub expiration: u32,
    /// Signature inception, seconds since the epoch.
    pub inception: u32,
    /// Key tag of the signing DNSKEY.
    pub key_tag: u16,
    /// Name of the zone that owns the signing DNSKEY.
    pub signer: Name,
    /// The signature bytes.
    pub signature: Vec<u8>,
}

/// A set of RR types carried by NSEC/NSEC3 records
/// (RFC 4034 §4.1.2 window-block encoding).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct TypeBitmap {
    types: BTreeSet<u16>,
}

impl TypeBitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of types.
    pub fn from_types<I: IntoIterator<Item = RrType>>(types: I) -> Self {
        TypeBitmap {
            types: types.into_iter().map(|t| t.to_u16()).collect(),
        }
    }

    /// Insert a type.
    pub fn insert(&mut self, t: RrType) {
        self.types.insert(t.to_u16());
    }

    /// Membership test.
    pub fn contains(&self, t: RrType) -> bool {
        self.types.contains(&t.to_u16())
    }

    /// Iterate the contained types in numeric order.
    pub fn iter(&self) -> impl Iterator<Item = RrType> + '_ {
        self.types.iter().map(|&v| RrType::from_u16(v))
    }

    /// True when no types are present.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Encode as RFC 4034 window blocks.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let mut window: i32 = -1;
        let mut bitmap = [0u8; 32];
        let mut max_byte = 0usize;

        let flush = |buf: &mut Vec<u8>, window: i32, bitmap: &[u8; 32], max_byte: usize| {
            if window >= 0 {
                buf.push(window as u8);
                buf.push((max_byte + 1) as u8);
                buf.extend_from_slice(&bitmap[..=max_byte]);
            }
        };

        for &t in &self.types {
            let w = i32::from(t >> 8);
            if w != window {
                flush(buf, window, &bitmap, max_byte);
                window = w;
                bitmap = [0u8; 32];
                max_byte = 0;
            }
            let low = (t & 0xFF) as usize;
            bitmap[low / 8] |= 0x80 >> (low % 8);
            max_byte = max_byte.max(low / 8);
        }
        flush(buf, window, &bitmap, max_byte);
    }

    /// Decode window blocks from exactly `data`.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut types = BTreeSet::new();
        let mut pos = 0;
        while pos < data.len() {
            if pos + 2 > data.len() {
                return Err(WireError::Truncated {
                    context: "type bitmap window",
                });
            }
            let window = u16::from(data[pos]);
            let len = usize::from(data[pos + 1]);
            pos += 2;
            if len == 0 || len > 32 || pos + len > data.len() {
                return Err(WireError::Truncated {
                    context: "type bitmap block",
                });
            }
            for (byte_idx, &byte) in data[pos..pos + len].iter().enumerate() {
                for bit in 0..8 {
                    if byte & (0x80 >> bit) != 0 {
                        types.insert((window << 8) | ((byte_idx * 8 + bit) as u16));
                    }
                }
            }
            pos += len;
        }
        Ok(TypeBitmap { types })
    }
}

impl fmt::Display for TypeBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rdata {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Nameserver.
    Ns(Name),
    /// Alias.
    Cname(Name),
    /// Pointer.
    Ptr(Name),
    /// Mail exchange.
    Mx {
        /// Preference value; lower wins.
        preference: u16,
        /// Exchange host name.
        exchange: Name,
    },
    /// Text record: one or more character strings.
    Txt(Vec<Vec<u8>>),
    /// Start of authority.
    Soa(Soa),
    /// Delegation signer.
    Ds {
        /// Key tag of the referenced DNSKEY.
        key_tag: u16,
        /// Algorithm of the referenced DNSKEY.
        algorithm: u8,
        /// Digest type used.
        digest_type: u8,
        /// Digest of owner ‖ DNSKEY RDATA.
        digest: Vec<u8>,
    },
    /// DNSSEC public key.
    Dnskey {
        /// Flags: bit 7 (value 256) = Zone Key, bit 15 (value 1) = SEP.
        flags: u16,
        /// Must be 3.
        protocol: u8,
        /// Algorithm number.
        algorithm: u8,
        /// Public key material.
        public_key: Vec<u8>,
    },
    /// DNSSEC signature.
    Rrsig(Rrsig),
    /// Authenticated denial (plain).
    Nsec {
        /// Next owner name in canonical order.
        next: Name,
        /// Types present at this owner.
        types: TypeBitmap,
    },
    /// Authenticated denial (hashed).
    Nsec3 {
        /// Hash algorithm (1 = SHA-1).
        hash_alg: u8,
        /// Flags: bit 0 = opt-out.
        flags: u8,
        /// Extra hash iterations.
        iterations: u16,
        /// Salt (empty allowed).
        salt: Vec<u8>,
        /// Next hashed owner (raw bytes, not base32).
        next_hashed: Vec<u8>,
        /// Types present at the original owner.
        types: TypeBitmap,
    },
    /// NSEC3 parameters advertised by the zone.
    Nsec3param {
        /// Hash algorithm (1 = SHA-1).
        hash_alg: u8,
        /// Flags (always 0 here).
        flags: u8,
        /// Extra hash iterations.
        iterations: u16,
        /// Salt (empty allowed).
        salt: Vec<u8>,
    },
    /// Opaque RDATA for types we do not model.
    Unknown {
        /// Numeric RR type.
        rtype: u16,
        /// Raw RDATA bytes.
        data: Vec<u8>,
    },
}

impl Rdata {
    /// A deep copy whose embedded [`Name`]s share no storage with
    /// `self` (see [`Name::detached`]). `Vec` payloads are freshly
    /// allocated by `clone()` already; only the `Arc`-backed names need
    /// explicit detaching.
    pub fn detached(&self) -> Self {
        match self {
            Rdata::Ns(n) => Rdata::Ns(n.detached()),
            Rdata::Cname(n) => Rdata::Cname(n.detached()),
            Rdata::Ptr(n) => Rdata::Ptr(n.detached()),
            Rdata::Mx {
                preference,
                exchange,
            } => Rdata::Mx {
                preference: *preference,
                exchange: exchange.detached(),
            },
            Rdata::Soa(soa) => Rdata::Soa(Soa {
                mname: soa.mname.detached(),
                rname: soa.rname.detached(),
                ..soa.clone()
            }),
            Rdata::Rrsig(sig) => Rdata::Rrsig(Rrsig {
                signer: sig.signer.detached(),
                ..sig.clone()
            }),
            Rdata::Nsec { next, types } => Rdata::Nsec {
                next: next.detached(),
                types: types.clone(),
            },
            other => other.clone(),
        }
    }

    /// The RR type this RDATA belongs to.
    pub fn rtype(&self) -> RrType {
        match self {
            Rdata::A(_) => RrType::A,
            Rdata::Aaaa(_) => RrType::Aaaa,
            Rdata::Ns(_) => RrType::Ns,
            Rdata::Cname(_) => RrType::Cname,
            Rdata::Ptr(_) => RrType::Ptr,
            Rdata::Mx { .. } => RrType::Mx,
            Rdata::Txt(_) => RrType::Txt,
            Rdata::Soa(_) => RrType::Soa,
            Rdata::Ds { .. } => RrType::Ds,
            Rdata::Dnskey { .. } => RrType::Dnskey,
            Rdata::Rrsig(_) => RrType::Rrsig,
            Rdata::Nsec { .. } => RrType::Nsec,
            Rdata::Nsec3 { .. } => RrType::Nsec3,
            Rdata::Nsec3param { .. } => RrType::Nsec3param,
            Rdata::Unknown { rtype, .. } => RrType::from_u16(*rtype),
        }
    }

    /// Encode the RDATA body. Names inside legacy types (NS, CNAME, PTR,
    /// MX, SOA) may be compressed when a compressor is supplied; names in
    /// DNSSEC types are always encoded uncompressed (RFC 3597 / RFC 4034
    /// require this for unknown-type transparency and signature
    /// stability).
    pub fn encode(&self, buf: &mut Vec<u8>, mut compressor: Option<&mut Compressor>) {
        match self {
            Rdata::A(addr) => buf.extend_from_slice(&addr.octets()),
            Rdata::Aaaa(addr) => buf.extend_from_slice(&addr.octets()),
            Rdata::Ns(n) | Rdata::Cname(n) | Rdata::Ptr(n) => {
                n.encode(buf, compressor.as_deref_mut())
            }
            Rdata::Mx {
                preference,
                exchange,
            } => {
                buf.extend_from_slice(&preference.to_be_bytes());
                exchange.encode(buf, compressor.as_deref_mut());
            }
            Rdata::Txt(strings) => {
                for s in strings {
                    buf.push(s.len().min(255) as u8);
                    buf.extend_from_slice(&s[..s.len().min(255)]);
                }
            }
            Rdata::Soa(soa) => {
                soa.mname.encode(buf, compressor.as_deref_mut());
                soa.rname.encode(buf, compressor);
                for v in [soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum] {
                    buf.extend_from_slice(&v.to_be_bytes());
                }
            }
            Rdata::Ds {
                key_tag,
                algorithm,
                digest_type,
                digest,
            } => {
                buf.extend_from_slice(&key_tag.to_be_bytes());
                buf.push(*algorithm);
                buf.push(*digest_type);
                buf.extend_from_slice(digest);
            }
            Rdata::Dnskey {
                flags,
                protocol,
                algorithm,
                public_key,
            } => {
                buf.extend_from_slice(&flags.to_be_bytes());
                buf.push(*protocol);
                buf.push(*algorithm);
                buf.extend_from_slice(public_key);
            }
            Rdata::Rrsig(sig) => {
                buf.extend_from_slice(&sig.type_covered.to_u16().to_be_bytes());
                buf.push(sig.algorithm);
                buf.push(sig.labels);
                buf.extend_from_slice(&sig.original_ttl.to_be_bytes());
                buf.extend_from_slice(&sig.expiration.to_be_bytes());
                buf.extend_from_slice(&sig.inception.to_be_bytes());
                buf.extend_from_slice(&sig.key_tag.to_be_bytes());
                sig.signer.encode(buf, None);
                buf.extend_from_slice(&sig.signature);
            }
            Rdata::Nsec { next, types } => {
                next.encode(buf, None);
                types.encode(buf);
            }
            Rdata::Nsec3 {
                hash_alg,
                flags,
                iterations,
                salt,
                next_hashed,
                types,
            } => {
                buf.push(*hash_alg);
                buf.push(*flags);
                buf.extend_from_slice(&iterations.to_be_bytes());
                buf.push(salt.len() as u8);
                buf.extend_from_slice(salt);
                buf.push(next_hashed.len() as u8);
                buf.extend_from_slice(next_hashed);
                types.encode(buf);
            }
            Rdata::Nsec3param {
                hash_alg,
                flags,
                iterations,
                salt,
            } => {
                buf.push(*hash_alg);
                buf.push(*flags);
                buf.extend_from_slice(&iterations.to_be_bytes());
                buf.push(salt.len() as u8);
                buf.extend_from_slice(salt);
            }
            Rdata::Unknown { data, .. } => buf.extend_from_slice(data),
        }
    }

    /// Decode `rdlen` bytes at `msg[*pos..]` as RDATA of type `rtype`.
    /// `*pos` advances past the RDATA.
    pub fn decode(
        msg: &[u8],
        pos: &mut usize,
        rdlen: usize,
        rtype: RrType,
    ) -> Result<Self, WireError> {
        let end = *pos + rdlen;
        if end > msg.len() {
            return Err(WireError::Truncated { context: "rdata" });
        }
        let take_slice = |pos: &mut usize, n: usize| -> Result<&[u8], WireError> {
            if *pos + n > end {
                return Err(WireError::BadRdataLength {
                    rtype: rtype.to_u16(),
                });
            }
            let s = &msg[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };

        let rdata = match rtype {
            RrType::A => {
                let o = take_slice(pos, 4)?;
                Rdata::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RrType::Aaaa => {
                let o = take_slice(pos, 16)?;
                let mut b = [0u8; 16];
                b.copy_from_slice(o);
                Rdata::Aaaa(Ipv6Addr::from(b))
            }
            RrType::Ns => Rdata::Ns(Name::decode(msg, pos)?),
            RrType::Cname => Rdata::Cname(Name::decode(msg, pos)?),
            RrType::Ptr => Rdata::Ptr(Name::decode(msg, pos)?),
            RrType::Mx => {
                let p = take_slice(pos, 2)?;
                let preference = u16::from_be_bytes([p[0], p[1]]);
                Rdata::Mx {
                    preference,
                    exchange: Name::decode(msg, pos)?,
                }
            }
            RrType::Txt => {
                let mut strings = Vec::new();
                while *pos < end {
                    let len = usize::from(msg[*pos]);
                    *pos += 1;
                    strings.push(take_slice(pos, len)?.to_vec());
                }
                Rdata::Txt(strings)
            }
            RrType::Soa => {
                let mname = Name::decode(msg, pos)?;
                let rname = Name::decode(msg, pos)?;
                let f = take_slice(pos, 20)?;
                let u = |i: usize| u32::from_be_bytes([f[i], f[i + 1], f[i + 2], f[i + 3]]);
                Rdata::Soa(Soa {
                    mname,
                    rname,
                    serial: u(0),
                    refresh: u(4),
                    retry: u(8),
                    expire: u(12),
                    minimum: u(16),
                })
            }
            RrType::Ds => {
                let h = take_slice(pos, 4)?;
                let key_tag = u16::from_be_bytes([h[0], h[1]]);
                let algorithm = h[2];
                let digest_type = h[3];
                let digest = msg[*pos..end].to_vec();
                *pos = end;
                Rdata::Ds {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest,
                }
            }
            RrType::Dnskey => {
                let h = take_slice(pos, 4)?;
                let flags = u16::from_be_bytes([h[0], h[1]]);
                let protocol = h[2];
                let algorithm = h[3];
                let public_key = msg[*pos..end].to_vec();
                *pos = end;
                Rdata::Dnskey {
                    flags,
                    protocol,
                    algorithm,
                    public_key,
                }
            }
            RrType::Rrsig => {
                let h = take_slice(pos, 18)?;
                let type_covered = RrType::from_u16(u16::from_be_bytes([h[0], h[1]]));
                let algorithm = h[2];
                let labels = h[3];
                let original_ttl = u32::from_be_bytes([h[4], h[5], h[6], h[7]]);
                let expiration = u32::from_be_bytes([h[8], h[9], h[10], h[11]]);
                let inception = u32::from_be_bytes([h[12], h[13], h[14], h[15]]);
                let key_tag = u16::from_be_bytes([h[16], h[17]]);
                let signer = Name::decode(msg, pos)?;
                if *pos > end {
                    return Err(WireError::BadRdataLength { rtype: 46 });
                }
                let signature = msg[*pos..end].to_vec();
                *pos = end;
                Rdata::Rrsig(Rrsig {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer,
                    signature,
                })
            }
            RrType::Nsec => {
                let next = Name::decode(msg, pos)?;
                if *pos > end {
                    return Err(WireError::BadRdataLength { rtype: 47 });
                }
                let types = TypeBitmap::decode(&msg[*pos..end])?;
                *pos = end;
                Rdata::Nsec { next, types }
            }
            RrType::Nsec3 => {
                let h = take_slice(pos, 4)?;
                let hash_alg = h[0];
                let flags = h[1];
                let iterations = u16::from_be_bytes([h[2], h[3]]);
                let salt_len = usize::from(take_slice(pos, 1)?[0]);
                let salt = take_slice(pos, salt_len)?.to_vec();
                let hash_len = usize::from(take_slice(pos, 1)?[0]);
                let next_hashed = take_slice(pos, hash_len)?.to_vec();
                let types = TypeBitmap::decode(&msg[*pos..end])?;
                *pos = end;
                Rdata::Nsec3 {
                    hash_alg,
                    flags,
                    iterations,
                    salt,
                    next_hashed,
                    types,
                }
            }
            RrType::Nsec3param => {
                let h = take_slice(pos, 4)?;
                let hash_alg = h[0];
                let flags = h[1];
                let iterations = u16::from_be_bytes([h[2], h[3]]);
                let salt_len = usize::from(take_slice(pos, 1)?[0]);
                let salt = take_slice(pos, salt_len)?.to_vec();
                if *pos != end {
                    return Err(WireError::BadRdataLength { rtype: 51 });
                }
                Rdata::Nsec3param {
                    hash_alg,
                    flags,
                    iterations,
                    salt,
                }
            }
            other => {
                let data = msg[*pos..end].to_vec();
                *pos = end;
                Rdata::Unknown {
                    rtype: other.to_u16(),
                    data,
                }
            }
        };
        if *pos != end {
            return Err(WireError::BadRdataLength {
                rtype: rtype.to_u16(),
            });
        }
        Ok(rdata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn roundtrip(rdata: &Rdata) {
        let mut buf = Vec::new();
        rdata.encode(&mut buf, None);
        let mut pos = 0;
        let decoded = Rdata::decode(&buf, &mut pos, buf.len(), rdata.rtype()).unwrap();
        assert_eq!(&decoded, rdata);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn roundtrip_simple_types() {
        roundtrip(&Rdata::A("192.0.2.1".parse().unwrap()));
        roundtrip(&Rdata::Aaaa("2001:db8::1".parse().unwrap()));
        roundtrip(&Rdata::Ns(n("ns1.example.com")));
        roundtrip(&Rdata::Cname(n("alias.example.org")));
        roundtrip(&Rdata::Ptr(n("host.example.net")));
        roundtrip(&Rdata::Mx {
            preference: 10,
            exchange: n("mx.example.com"),
        });
        roundtrip(&Rdata::Txt(vec![b"hello".to_vec(), b"world".to_vec()]));
    }

    #[test]
    fn roundtrip_soa() {
        roundtrip(&Rdata::Soa(Soa {
            mname: n("ns1.example.com"),
            rname: n("hostmaster.example.com"),
            serial: 2023051501,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }));
    }

    #[test]
    fn roundtrip_dnssec_types() {
        roundtrip(&Rdata::Ds {
            key_tag: 60485,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0xAB; 32],
        });
        roundtrip(&Rdata::Dnskey {
            flags: 257,
            protocol: 3,
            algorithm: 13,
            public_key: vec![1, 2, 3, 4, 5],
        });
        roundtrip(&Rdata::Rrsig(Rrsig {
            type_covered: RrType::A,
            algorithm: 8,
            labels: 3,
            original_ttl: 3600,
            expiration: 1_700_000_000,
            inception: 1_690_000_000,
            key_tag: 12345,
            signer: n("example.com"),
            signature: vec![9; 32],
        }));
        roundtrip(&Rdata::Nsec {
            next: n("b.example.com"),
            types: TypeBitmap::from_types([RrType::A, RrType::Rrsig, RrType::Nsec]),
        });
        roundtrip(&Rdata::Nsec3 {
            hash_alg: 1,
            flags: 1,
            iterations: 12,
            salt: vec![0xaa, 0xbb],
            next_hashed: vec![0x11; 20],
            types: TypeBitmap::from_types([RrType::A, RrType::Aaaa]),
        });
        roundtrip(&Rdata::Nsec3param {
            hash_alg: 1,
            flags: 0,
            iterations: 0,
            salt: vec![],
        });
    }

    #[test]
    fn roundtrip_unknown() {
        roundtrip(&Rdata::Unknown {
            rtype: 99,
            data: vec![1, 2, 3],
        });
    }

    #[test]
    fn bitmap_windows() {
        // Types in different windows: A (1, window 0) and TYPE258
        // (window 1) — forces two blocks.
        let mut bm = TypeBitmap::new();
        bm.insert(RrType::A);
        bm.insert(RrType::Other(258));
        let mut buf = Vec::new();
        bm.encode(&mut buf);
        assert_eq!(TypeBitmap::decode(&buf).unwrap(), bm);
        assert!(bm.contains(RrType::A));
        assert!(bm.contains(RrType::Other(258)));
        assert!(!bm.contains(RrType::Ns));
    }

    #[test]
    fn bitmap_rfc4034_example() {
        // RFC 4034 §4.3 example: A MX RRSIG NSEC TYPE1234 — the encoded
        // bitmap is specified in the RFC.
        let bm = TypeBitmap::from_types([
            RrType::A,
            RrType::Mx,
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Other(1234),
        ]);
        let mut buf = Vec::new();
        bm.encode(&mut buf);
        assert_eq!(
            buf,
            vec![
                0x00, 0x06, 0x40, 0x01, 0x00, 0x00, 0x00, 0x03, // window 0
                0x04, 0x1b, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                0x20, // window 4
            ]
        );
        assert_eq!(TypeBitmap::decode(&buf).unwrap(), bm);
    }

    #[test]
    fn rdlen_mismatch_rejected() {
        // A record with 3 bytes of RDATA.
        let buf = [1, 2, 3];
        let mut pos = 0;
        assert!(Rdata::decode(&buf, &mut pos, 3, RrType::A).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        Rdata::A("192.0.2.1".parse().unwrap()).encode(&mut buf, None);
        buf.push(0xFF);
        let mut pos = 0;
        assert!(Rdata::decode(&buf, &mut pos, 5, RrType::A).is_err());
    }
}
