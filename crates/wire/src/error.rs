//! Wire-format error type.

use std::fmt;

/// Errors raised while encoding or decoding DNS messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes while decoding.
    Truncated {
        /// What was being decoded when the buffer ended.
        context: &'static str,
    },
    /// A label exceeded 63 octets or a name exceeded 255 octets.
    NameTooLong,
    /// A label contained characters we refuse to parse from text form.
    BadLabel(String),
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A count field promised more entries than the payload holds.
    BadCount,
    /// RDATA length disagreed with the parsed content.
    BadRdataLength {
        /// RR type whose RDATA was inconsistent.
        rtype: u16,
    },
    /// More than one OPT record, or an OPT record somewhere other than the
    /// additional section.
    BadOpt,
    /// A value did not fit its wire field (e.g. oversized EXTRA-TEXT).
    FieldOverflow(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "message truncated while reading {context}")
            }
            WireError::NameTooLong => write!(f, "domain name exceeds RFC 1035 length limits"),
            WireError::BadLabel(l) => write!(f, "invalid label {l:?}"),
            WireError::BadPointer => write!(f, "invalid compression pointer"),
            WireError::BadCount => write!(f, "section count exceeds message contents"),
            WireError::BadRdataLength { rtype } => {
                write!(f, "RDATA length mismatch for RR type {rtype}")
            }
            WireError::BadOpt => write!(f, "malformed OPT pseudo-record placement"),
            WireError::FieldOverflow(what) => write!(f, "value too large for field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}
