//! DNS-over-stream framing (RFC 1035 §4.2.2).
//!
//! Over TCP (and any other byte-stream transport) each DNS message is
//! preceded by a two-byte big-endian length field. These helpers are
//! the one place the repo encodes and decodes that frame, shared by the
//! serving front end (`ede-server`), its loopback client, and tests.
//!
//! Two shapes are provided:
//!
//! * [`frame`] / [`frame_into`] — prefix an encoded message with its
//!   length, for writers that assemble the whole frame before `write`.
//! * [`FrameReader`] — an incremental accumulator for readers that
//!   receive bytes in arbitrary chunks (short reads, timeouts), with a
//!   configurable size cap so a hostile peer cannot force a 64 KiB
//!   allocation per connection.

use crate::error::WireError;

/// Hard upper bound of a stream frame: the length prefix is 16 bits.
pub const MAX_FRAME_LEN: usize = u16::MAX as usize;

/// Prefix `msg` with its two-byte big-endian length, yielding the exact
/// byte sequence to write on a stream transport.
///
/// Fails with [`WireError::FieldOverflow`] when `msg` exceeds
/// [`MAX_FRAME_LEN`].
///
/// ```
/// let framed = ede_wire::stream::frame(&[0xAB, 0xCD]).unwrap();
/// assert_eq!(framed, vec![0x00, 0x02, 0xAB, 0xCD]);
/// ```
pub fn frame(msg: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(msg.len() + 2);
    frame_into(msg, &mut out)?;
    Ok(out)
}

/// [`frame`] into an existing buffer (appended), avoiding a fresh
/// allocation per response on a busy connection.
pub fn frame_into(msg: &[u8], out: &mut Vec<u8>) -> Result<(), WireError> {
    let len = u16::try_from(msg.len()).map_err(|_| WireError::FieldOverflow("stream frame"))?;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(msg);
    Ok(())
}

/// Incremental decoder for length-prefixed stream frames.
///
/// Feed raw bytes as they arrive with [`push`](FrameReader::push); take
/// completed frames with [`next_frame`](FrameReader::next_frame). The
/// reader handles frames split across arbitrarily many reads and
/// multiple frames arriving in one read (pipelined queries).
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_len: usize,
}

impl FrameReader {
    /// A reader refusing frames longer than `max_len` bytes (clamped to
    /// [`MAX_FRAME_LEN`]).
    pub fn new(max_len: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            max_len: max_len.clamp(1, MAX_FRAME_LEN),
        }
    }

    /// Append freshly-read bytes to the accumulator.
    ///
    /// Fails with [`WireError::FieldOverflow`] as soon as the pending
    /// frame's declared length exceeds this reader's cap — the caller
    /// should drop the connection, since the stream can no longer be
    /// re-synchronized.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.buf.extend_from_slice(bytes);
        if let Some(declared) = self.declared_len() {
            if declared > self.max_len {
                return Err(WireError::FieldOverflow("stream frame"));
            }
        }
        Ok(())
    }

    /// The length the pending frame's prefix declares, once both prefix
    /// bytes have arrived.
    fn declared_len(&self) -> Option<usize> {
        (self.buf.len() >= 2).then(|| usize::from(u16::from_be_bytes([self.buf[0], self.buf[1]])))
    }

    /// Remove and return the next complete frame's payload, if one has
    /// fully arrived.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        let declared = self.declared_len()?;
        if self.buf.len() < 2 + declared {
            return None;
        }
        let mut frame: Vec<u8> = self.buf.drain(..2 + declared).collect();
        frame.drain(..2);
        Some(frame)
    }

    /// True when partially-received bytes are pending (an incomplete
    /// frame): closing now would cut a request mid-flight.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let msg = vec![1u8, 2, 3, 4, 5];
        let framed = frame(&msg).unwrap();
        assert_eq!(framed.len(), msg.len() + 2);
        assert_eq!(&framed[..2], &[0, 5]);

        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        reader.push(&framed).unwrap();
        assert_eq!(reader.next_frame().unwrap(), msg);
        assert!(!reader.has_partial());
        assert!(reader.next_frame().is_none());
    }

    #[test]
    fn split_and_pipelined_frames() {
        let a = frame(&[0xAA; 3]).unwrap();
        let b = frame(&[0xBB; 700]).unwrap();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);

        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        // Deliver one byte at a time: frames must still reassemble.
        for chunk in joined.chunks(1) {
            reader.push(chunk).unwrap();
        }
        assert_eq!(reader.next_frame().unwrap(), vec![0xAA; 3]);
        assert_eq!(reader.next_frame().unwrap(), vec![0xBB; 700]);
        assert!(reader.next_frame().is_none());
    }

    #[test]
    fn oversized_declared_length_rejected() {
        let mut reader = FrameReader::new(512);
        let err = reader.push(&[0xFF, 0xFF]).unwrap_err();
        assert_eq!(err, WireError::FieldOverflow("stream frame"));
    }

    #[test]
    fn empty_frame_is_legal_framing() {
        // A zero-length frame is framing-valid (the DNS layer above
        // rejects it as too short for a header).
        let framed = frame(&[]).unwrap();
        let mut reader = FrameReader::new(16);
        reader.push(&framed).unwrap();
        assert_eq!(reader.next_frame().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn frame_too_long_rejected() {
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert_eq!(
            frame(&big).unwrap_err(),
            WireError::FieldOverflow("stream frame")
        );
    }

    #[test]
    fn partial_frame_reported() {
        let mut reader = FrameReader::new(64);
        reader.push(&[0x00]).unwrap();
        assert!(reader.has_partial());
        assert!(reader.next_frame().is_none());
        reader.push(&[0x02, 0x01]).unwrap();
        assert!(reader.next_frame().is_none(), "one payload byte missing");
        reader.push(&[0x02]).unwrap();
        assert_eq!(reader.next_frame().unwrap(), vec![0x01, 0x02]);
    }
}
