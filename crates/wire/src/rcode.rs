//! DNS response codes.
//!
//! The header carries 4 bits; EDNS(0) extends the RCODE to 12 bits by
//! contributing 8 high bits from the OPT TTL field (RFC 6891 §6.1.3).
//! [`Rcode`] models the *combined* value; the message codec splits and
//! reassembles it.

use std::fmt;

/// A (possibly extended) DNS response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error condition.
    NoError,
    /// Format error: the server could not interpret the query.
    FormErr,
    /// Server failure.
    ServFail,
    /// The queried name does not exist.
    NxDomain,
    /// The server does not support the requested operation.
    NotImp,
    /// The server refuses to answer for policy reasons.
    Refused,
    /// RFC 2136: a name exists when it should not.
    YxDomain,
    /// RFC 2136: an RRset exists when it should not.
    YxRrset,
    /// RFC 2136: an RRset that should exist does not.
    NxRrset,
    /// The server is not authoritative for the zone (RFC 2136) /
    /// not authorized (RFC 8945 TSIG). The double meaning of value 9
    /// is one of the ambiguities the paper's introduction cites.
    NotAuth,
    /// RFC 2136: a name is not within the zone.
    NotZone,
    /// RFC 6891: unsupported EDNS version.
    BadVers,
    /// Any other value, carried numerically.
    Other(u16),
}

impl Rcode {
    /// Combined 12-bit numeric value.
    pub fn to_u16(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::YxDomain => 6,
            Rcode::YxRrset => 7,
            Rcode::NxRrset => 8,
            Rcode::NotAuth => 9,
            Rcode::NotZone => 10,
            Rcode::BadVers => 16,
            Rcode::Other(v) => v,
        }
    }

    /// Decode a combined numeric value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            6 => Rcode::YxDomain,
            7 => Rcode::YxRrset,
            8 => Rcode::NxRrset,
            9 => Rcode::NotAuth,
            10 => Rcode::NotZone,
            16 => Rcode::BadVers,
            other => Rcode::Other(other),
        }
    }

    /// The low 4 bits carried in the message header.
    pub fn header_bits(self) -> u8 {
        (self.to_u16() & 0x0F) as u8
    }

    /// The high 8 bits carried in the OPT TTL (zero without EDNS).
    pub fn extended_bits(self) -> u8 {
        (self.to_u16() >> 4) as u8
    }

    /// Reassemble from header bits and OPT extension bits.
    pub fn from_parts(header_bits: u8, extended_bits: u8) -> Self {
        Rcode::from_u16((u16::from(extended_bits) << 4) | u16::from(header_bits & 0x0F))
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::YxDomain => write!(f, "YXDOMAIN"),
            Rcode::YxRrset => write!(f, "YXRRSET"),
            Rcode::NxRrset => write!(f, "NXRRSET"),
            Rcode::NotAuth => write!(f, "NOTAUTH"),
            Rcode::NotZone => write!(f, "NOTZONE"),
            Rcode::BadVers => write!(f, "BADVERS"),
            Rcode::Other(v) => write!(f, "RCODE{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for v in 0..=4095u16 {
            assert_eq!(Rcode::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn split_and_reassemble() {
        let badvers = Rcode::BadVers;
        assert_eq!(badvers.header_bits(), 0);
        assert_eq!(badvers.extended_bits(), 1);
        assert_eq!(Rcode::from_parts(0, 1), Rcode::BadVers);
        assert_eq!(Rcode::from_parts(2, 0), Rcode::ServFail);
        assert_eq!(Rcode::from_parts(5, 0), Rcode::Refused);
    }

    #[test]
    fn display_names() {
        assert_eq!(Rcode::ServFail.to_string(), "SERVFAIL");
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(Rcode::NotAuth.to_string(), "NOTAUTH");
    }
}
