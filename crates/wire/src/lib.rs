//! DNS wire protocol for the Extended DNS Errors reproduction.
//!
//! This crate implements the parts of the DNS message format the paper's
//! measurement pipeline touches, from scratch:
//!
//! * domain [`name`]s with RFC 1035 compression and RFC 4034 canonical
//!   ordering;
//! * the message [`header`] with all flag bits and [`rcode`]s (including
//!   the 12-bit extended RCODE split across the header and the OPT record);
//! * resource [`record`]s and typed [`rdata`] for every RR type the study
//!   exercises: A, AAAA, NS, CNAME, SOA, PTR, MX, TXT, DS, DNSKEY, RRSIG,
//!   NSEC, NSEC3, NSEC3PARAM (plus an opaque fallback);
//! * [`edns`]: the EDNS(0) OPT pseudo-RR and its option list;
//! * [`ede`]: RFC 8914 Extended DNS Errors — the full IANA registry of
//!   Table 1 (codes 0–29) and the INFO-CODE ‖ EXTRA-TEXT option codec;
//! * [`registry`]: IANA DNSSEC algorithm numbers and DS digest types with
//!   assigned/unassigned/reserved semantics (the testbed's
//!   `*-unassigned-*`/`*-reserved-*` cases depend on these);
//! * full [`message`] encoding and decoding;
//! * [`stream`]: RFC 1035 §4.2.2 two-byte length-prefix framing for
//!   DNS-over-TCP transports.
//!
//! Everything round-trips: `decode(encode(m)) == m` is property-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ede;
pub mod edns;
pub mod error;
pub mod header;
pub mod message;
pub mod name;
pub mod rcode;
pub mod rdata;
pub mod record;
pub mod registry;
pub mod rrtype;
pub mod stream;
pub mod text;

pub use ede::{EdeCode, EdeEntry};
pub use edns::{Edns, EdnsOption};
pub use error::WireError;
pub use header::{Header, Opcode};
pub use message::{Message, Question};
pub use name::Name;
pub use rcode::Rcode;
pub use rdata::Rdata;
pub use record::{Class, Record};
pub use registry::{DigestAlg, SecAlg};
pub use rrtype::RrType;
