//! Property tests: every message the library can construct survives an
//! encode → decode round trip, and hostile inputs never panic the decoder.

use ede_wire::{
    ede::{EdeCode, EdeEntry},
    rdata::{Rdata, Rrsig, Soa, TypeBitmap},
    Edns, Message, Name, Opcode, Rcode, Record, RrType,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..5)
        .prop_map(|labels| Name::from_labels(labels.iter().map(|l| l.as_bytes())).unwrap())
}

fn arb_rrtype() -> impl Strategy<Value = RrType> {
    prop_oneof![
        Just(RrType::A),
        Just(RrType::Aaaa),
        Just(RrType::Ns),
        Just(RrType::Cname),
        Just(RrType::Soa),
        Just(RrType::Mx),
        Just(RrType::Txt),
        Just(RrType::Ds),
        Just(RrType::Dnskey),
        Just(RrType::Rrsig),
        Just(RrType::Nsec),
        Just(RrType::Nsec3),
        (256u16..4096).prop_map(RrType::from_u16),
    ]
}

fn arb_bitmap() -> impl Strategy<Value = TypeBitmap> {
    proptest::collection::vec(arb_rrtype(), 0..8).prop_map(TypeBitmap::from_types)
}

fn arb_rdata() -> impl Strategy<Value = Rdata> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| Rdata::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| Rdata::Aaaa(o.into())),
        arb_name().prop_map(Rdata::Ns),
        arb_name().prop_map(Rdata::Cname),
        (any::<u16>(), arb_name())
            .prop_map(|(preference, exchange)| Rdata::Mx { preference, exchange }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..3)
            .prop_map(Rdata::Txt),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>())
            .prop_map(|(mname, rname, serial, minimum)| Rdata::Soa(Soa {
                mname,
                rname,
                serial,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum,
            })),
        (any::<u16>(), any::<u8>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(key_tag, algorithm, digest_type, digest)| Rdata::Ds {
                key_tag,
                algorithm,
                digest_type,
                digest
            }),
        (any::<u16>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(
            |(flags, algorithm, public_key)| Rdata::Dnskey {
                flags,
                protocol: 3,
                algorithm,
                public_key
            }
        ),
        (
            arb_rrtype(),
            any::<u8>(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            arb_name(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(
                |(
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer,
                    signature,
                )| Rdata::Rrsig(Rrsig {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer,
                    signature,
                })
            ),
        (arb_name(), arb_bitmap()).prop_map(|(next, types)| Rdata::Nsec { next, types }),
        (
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..8),
            proptest::collection::vec(any::<u8>(), 1..21),
            arb_bitmap()
        )
            .prop_map(|(iterations, salt, next_hashed, types)| Rdata::Nsec3 {
                hash_alg: 1,
                flags: 0,
                iterations,
                salt,
                next_hashed,
                types
            }),
        (proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|data| Rdata::Unknown { rtype: 99, data }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

fn arb_ede_entry() -> impl Strategy<Value = EdeEntry> {
    (0u16..64, proptest::string::string_regex("[ -~]{0,60}").unwrap())
        .prop_map(|(code, text)| EdeEntry::with_text(EdeCode::from_u16(code), text))
}

fn arb_edns() -> impl Strategy<Value = Edns> {
    (
        512u16..4096,
        any::<bool>(),
        proptest::collection::vec(arb_ede_entry(), 0..4),
    )
        .prop_map(|(udp_payload_size, dnssec_ok, entries)| {
            let mut edns = Edns {
                udp_payload_size,
                dnssec_ok,
                ..Default::default()
            };
            for e in entries {
                edns.push_ede(e);
            }
            edns
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        0u16..12,
        proptest::collection::vec((arb_name(), arb_rrtype()), 0..2),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::option::of(arb_edns()),
    )
        .prop_map(
            |(id, response, rcode, questions, answers, authorities, additionals, edns)| {
                // A 12-bit extended rcode needs EDNS to survive the trip.
                let rcode = if edns.is_some() {
                    Rcode::from_u16(rcode)
                } else {
                    Rcode::from_u16(rcode & 0x0F)
                };
                Message {
                    id,
                    response,
                    opcode: Opcode::Query,
                    authoritative: response,
                    truncated: false,
                    recursion_desired: true,
                    recursion_available: response,
                    authentic_data: false,
                    checking_disabled: false,
                    rcode,
                    questions: questions
                        .into_iter()
                        .map(|(n, t)| ede_wire::Question::new(n, t))
                        .collect(),
                    answers,
                    authorities,
                    additionals,
                    edns,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let wire = msg.encode().unwrap();
        let decoded = Message::decode(&wire).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn name_roundtrip(name in arb_name()) {
        let wire = name.to_wire();
        let mut pos = 0;
        let decoded = Name::decode(&wire, &mut pos).unwrap();
        prop_assert_eq!(decoded, name);
        prop_assert_eq!(pos, wire.len());
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Hostile input: any outcome but a panic is acceptable.
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutations(msg in arb_message(), idx in 0usize..4096, bit in 0u8..8) {
        let mut wire = msg.encode().unwrap();
        if !wire.is_empty() {
            let i = idx % wire.len();
            wire[i] ^= 1 << bit;
            let _ = Message::decode(&wire);
        }
    }

    #[test]
    fn canonical_order_is_total(a in arb_name(), b in arb_name(), c in arb_name()) {
        // Antisymmetry and transitivity spot-checks for the RFC 4034 order.
        use std::cmp::Ordering;
        prop_assert_eq!(a.canonical_cmp(&b), b.canonical_cmp(&a).reverse());
        if a.canonical_cmp(&b) == Ordering::Less && b.canonical_cmp(&c) == Ordering::Less {
            prop_assert_eq!(a.canonical_cmp(&c), Ordering::Less);
        }
    }

    #[test]
    fn ede_payload_roundtrip(entry in arb_ede_entry()) {
        let payload = entry.encode_payload().unwrap();
        prop_assert_eq!(EdeEntry::decode_payload(&payload).unwrap(), entry);
    }
}
