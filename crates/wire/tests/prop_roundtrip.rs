//! Randomized round-trip tests: every message the library can construct
//! survives an encode → decode round trip, and hostile inputs never
//! panic the decoder. The cases are driven by an in-file deterministic
//! PRNG (SplitMix64), so every failure reproduces from the fixed seed.

use ede_wire::{
    ede::{EdeCode, EdeEntry},
    rdata::{Rdata, Rrsig, Soa, TypeBitmap},
    Edns, Message, Name, Opcode, Rcode, Record, RrType,
};

/// Deterministic SplitMix64 stream driving the randomized cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `lo..hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// Random bytes, length uniform in `lo..hi`.
    fn bytes(&mut self, lo: u64, hi: u64) -> Vec<u8> {
        let len = self.range(lo, hi);
        (0..len).map(|_| self.next() as u8).collect()
    }
}

const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
const ALNUM_DASH: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";

/// A hostname label: `[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?`.
fn arb_label(rng: &mut Rng) -> Vec<u8> {
    let len = 1 + rng.below(16) as usize;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let charset = if i == 0 || i == len - 1 {
            ALNUM
        } else {
            ALNUM_DASH
        };
        out.push(charset[rng.below(charset.len() as u64) as usize]);
    }
    out
}

fn arb_name(rng: &mut Rng) -> Name {
    let n = rng.below(5) as usize;
    let labels: Vec<Vec<u8>> = (0..n).map(|_| arb_label(rng)).collect();
    Name::from_labels(labels.iter().map(|l| l.as_slice())).unwrap()
}

fn arb_rrtype(rng: &mut Rng) -> RrType {
    const KNOWN: [RrType; 12] = [
        RrType::A,
        RrType::Aaaa,
        RrType::Ns,
        RrType::Cname,
        RrType::Soa,
        RrType::Mx,
        RrType::Txt,
        RrType::Ds,
        RrType::Dnskey,
        RrType::Rrsig,
        RrType::Nsec,
        RrType::Nsec3,
    ];
    match rng.below(13) {
        i if (i as usize) < KNOWN.len() => KNOWN[i as usize],
        _ => RrType::from_u16(rng.range(256, 4096) as u16),
    }
}

fn arb_bitmap(rng: &mut Rng) -> TypeBitmap {
    let n = rng.below(8) as usize;
    TypeBitmap::from_types((0..n).map(|_| arb_rrtype(rng)).collect::<Vec<_>>())
}

fn arb_rdata(rng: &mut Rng) -> Rdata {
    match rng.below(13) {
        0 => {
            let mut o = [0u8; 4];
            o.iter_mut().for_each(|b| *b = rng.next() as u8);
            Rdata::A(o.into())
        }
        1 => {
            let mut o = [0u8; 16];
            o.iter_mut().for_each(|b| *b = rng.next() as u8);
            Rdata::Aaaa(o.into())
        }
        2 => Rdata::Ns(arb_name(rng)),
        3 => Rdata::Cname(arb_name(rng)),
        4 => Rdata::Mx {
            preference: rng.next() as u16,
            exchange: arb_name(rng),
        },
        5 => {
            let n = 1 + rng.below(2) as usize;
            Rdata::Txt((0..n).map(|_| rng.bytes(0, 40)).collect())
        }
        6 => Rdata::Soa(Soa {
            mname: arb_name(rng),
            rname: arb_name(rng),
            serial: rng.next() as u32,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: rng.next() as u32,
        }),
        7 => Rdata::Ds {
            key_tag: rng.next() as u16,
            algorithm: rng.next() as u8,
            digest_type: rng.next() as u8,
            digest: rng.bytes(0, 48),
        },
        8 => Rdata::Dnskey {
            flags: rng.next() as u16,
            protocol: 3,
            algorithm: rng.next() as u8,
            public_key: rng.bytes(0, 64),
        },
        9 => Rdata::Rrsig(Rrsig {
            type_covered: arb_rrtype(rng),
            algorithm: rng.next() as u8,
            labels: rng.next() as u8,
            original_ttl: rng.next() as u32,
            expiration: rng.next() as u32,
            inception: rng.next() as u32,
            key_tag: rng.next() as u16,
            signer: arb_name(rng),
            signature: rng.bytes(0, 64),
        }),
        10 => Rdata::Nsec {
            next: arb_name(rng),
            types: arb_bitmap(rng),
        },
        11 => Rdata::Nsec3 {
            hash_alg: 1,
            flags: 0,
            iterations: rng.next() as u16,
            salt: rng.bytes(0, 8),
            next_hashed: rng.bytes(1, 21),
            types: arb_bitmap(rng),
        },
        _ => Rdata::Unknown {
            rtype: 99,
            data: rng.bytes(0, 32),
        },
    }
}

fn arb_record(rng: &mut Rng) -> Record {
    let name = arb_name(rng);
    let ttl = rng.next() as u32;
    Record::new(name, ttl, arb_rdata(rng))
}

fn arb_ede_entry(rng: &mut Rng) -> EdeEntry {
    let code = EdeCode::from_u16(rng.below(64) as u16);
    let len = rng.below(61) as usize;
    // Printable ASCII only: EXTRA-TEXT is human-facing.
    let text: String = (0..len)
        .map(|_| rng.range(0x20, 0x7F) as u8 as char)
        .collect();
    EdeEntry::with_text(code, text)
}

fn arb_edns(rng: &mut Rng) -> Edns {
    let mut edns = Edns {
        udp_payload_size: rng.range(512, 4096) as u16,
        dnssec_ok: rng.flag(),
        ..Default::default()
    };
    for _ in 0..rng.below(4) {
        edns.push_ede(arb_ede_entry(rng));
    }
    edns
}

fn arb_message(rng: &mut Rng) -> Message {
    let response = rng.flag();
    let edns = if rng.flag() {
        Some(arb_edns(rng))
    } else {
        None
    };
    // A 12-bit extended rcode needs EDNS to survive the trip.
    let rcode = if edns.is_some() {
        Rcode::from_u16(rng.below(12) as u16)
    } else {
        Rcode::from_u16(rng.below(12) as u16 & 0x0F)
    };
    Message {
        id: rng.next() as u16,
        response,
        opcode: Opcode::Query,
        authoritative: response,
        truncated: false,
        recursion_desired: true,
        recursion_available: response,
        authentic_data: false,
        checking_disabled: false,
        rcode,
        questions: (0..rng.below(2))
            .map(|_| ede_wire::Question::new(arb_name(rng), arb_rrtype(rng)))
            .collect(),
        answers: (0..rng.below(4)).map(|_| arb_record(rng)).collect(),
        authorities: (0..rng.below(3)).map(|_| arb_record(rng)).collect(),
        additionals: (0..rng.below(3)).map(|_| arb_record(rng)).collect(),
        edns,
    }
}

#[test]
fn message_roundtrip() {
    let mut rng = Rng(0x0001_5eed);
    for case in 0..512 {
        let msg = arb_message(&mut rng);
        let wire = msg.encode().unwrap();
        let decoded = Message::decode(&wire).unwrap();
        assert_eq!(decoded, msg, "case {case}");
    }
}

#[test]
fn name_roundtrip() {
    let mut rng = Rng(0x0002_5eed);
    for case in 0..512 {
        let name = arb_name(&mut rng);
        let wire = name.to_wire();
        let mut pos = 0;
        let decoded = Name::decode(&wire, &mut pos).unwrap();
        assert_eq!(decoded, name, "case {case}");
        assert_eq!(pos, wire.len(), "case {case}");
    }
}

#[test]
fn decoder_never_panics() {
    let mut rng = Rng(0x0003_5eed);
    for _ in 0..512 {
        // Hostile input: any outcome but a panic is acceptable.
        let _ = Message::decode(&rng.bytes(0, 512));
    }
}

#[test]
fn decoder_never_panics_on_mutations() {
    let mut rng = Rng(0x0004_5eed);
    for _ in 0..512 {
        let msg = arb_message(&mut rng);
        let mut wire = msg.encode().unwrap();
        if !wire.is_empty() {
            let i = rng.below(wire.len() as u64) as usize;
            wire[i] ^= 1 << rng.below(8);
            let _ = Message::decode(&wire);
        }
    }
}

#[test]
fn canonical_order_is_total() {
    use std::cmp::Ordering;
    let mut rng = Rng(0x0005_5eed);
    for _ in 0..512 {
        let (a, b, c) = (arb_name(&mut rng), arb_name(&mut rng), arb_name(&mut rng));
        // Antisymmetry and transitivity spot-checks for the RFC 4034 order.
        assert_eq!(a.canonical_cmp(&b), b.canonical_cmp(&a).reverse());
        if a.canonical_cmp(&b) == Ordering::Less && b.canonical_cmp(&c) == Ordering::Less {
            assert_eq!(a.canonical_cmp(&c), Ordering::Less, "{a} {b} {c}");
        }
    }
}

#[test]
fn ede_payload_roundtrip() {
    let mut rng = Rng(0x0006_5eed);
    for case in 0..256 {
        let entry = arb_ede_entry(&mut rng);
        let payload = entry.encode_payload().unwrap();
        assert_eq!(
            EdeEntry::decode_payload(&payload).unwrap(),
            entry,
            "case {case}"
        );
    }
}
