//! Authoritative DNS nameserver state machine.
//!
//! [`ZoneServer`] serves one or more signed (or deliberately broken)
//! [`ede_zone::Zone`]s over the simulated network, implementing the
//! answer shapes a validating resolver depends on:
//!
//! * authoritative answers with RRSIGs when the DO bit is set;
//! * referrals at zone cuts with DS records (secure delegation) or NSEC3
//!   opt-in proofs of DS absence (insecure delegation), plus glue;
//! * NODATA and NXDOMAIN responses with the full RFC 5155 NSEC3 proof
//!   set (closest-encloser match, next-closer cover, wildcard cover);
//! * authoritative DS answers at the parent side of a cut.
//!
//! [`behavior::Behavior`] layers the fault modes the paper observes in
//! the wild on top: REFUSED-to-everyone, client ACLs
//! (`allow-query-none` / `allow-query-localhost`), SERVFAIL, NOTAUTH,
//! silent drops, EDNS-oblivious legacy servers, and servers that refuse
//! non-recursive queries (§4.2.14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod denial;
pub mod server;
pub mod store;

pub use behavior::Behavior;
pub use server::ZoneServer;
pub use store::ZoneStore;
