//! Multi-zone storage with longest-suffix zone selection.

use ede_wire::Name;
use ede_zone::Zone;
use std::collections::BTreeMap;

/// The zones one server is authoritative for.
///
/// Lookup picks the zone with the longest apex that is an ancestor of the
/// query name — the same rule real servers apply when they host both a
/// parent and a child zone (our root and TLD servers do exactly that in
/// the scan).
#[derive(Debug, Default)]
pub struct ZoneStore {
    /// Keyed by apex; `Name`'s canonical order keeps ancestors adjacent
    /// but we still scan — the store is small per server.
    zones: BTreeMap<Name, Zone>,
}

impl ZoneStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a zone.
    pub fn insert(&mut self, zone: Zone) {
        self.zones.insert(zone.apex().clone(), zone);
    }

    /// The best (deepest) zone for `qname`, if any.
    pub fn find(&self, qname: &Name) -> Option<&Zone> {
        let mut best: Option<&Zone> = None;
        for (apex, zone) in &self.zones {
            if qname.is_subdomain_of(apex) {
                let better = match best {
                    None => true,
                    Some(b) => apex.label_count() > b.apex().label_count(),
                };
                if better {
                    best = Some(zone);
                }
            }
        }
        best
    }

    /// Direct access by exact apex.
    pub fn get(&self, apex: &Name) -> Option<&Zone> {
        self.zones.get(apex)
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// True when no zones are loaded.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterate zones in apex order.
    pub fn iter(&self) -> impl Iterator<Item = &Zone> {
        self.zones.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn deepest_zone_wins() {
        let mut store = ZoneStore::new();
        store.insert(Zone::new(n("com")));
        store.insert(Zone::new(n("example.com")));

        assert_eq!(
            store.find(&n("www.example.com")).unwrap().apex(),
            &n("example.com")
        );
        assert_eq!(store.find(&n("other.com")).unwrap().apex(), &n("com"));
        assert!(store.find(&n("example.org")).is_none());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn root_zone_matches_everything() {
        let mut store = ZoneStore::new();
        store.insert(Zone::new(Name::root()));
        assert!(store.find(&n("anything.at.all")).is_some());
    }
}
