//! Server fault behaviors observed by the paper.

use std::net::IpAddr;

/// How a server (mis)behaves before any zone logic runs.
///
/// These reproduce the §3 testbed ACL cases and the §4.2 wild-scan
/// failure modes: REFUSED (267 k nameservers), SERVFAIL (21 k), timeouts
/// (15 k), NOTAUTH (§4.2.13), EDNS-oblivious servers (§4.2.6) and
/// REFUSED-for-non-recursive-queries (§4.2.14).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Behavior {
    /// Answer normally.
    Normal,
    /// REFUSED to every client (`allow-query-none`, and the dominant
    /// broken-nameserver mode in the wild scan).
    RefuseAll,
    /// REFUSED unless the source address is on the list
    /// (`allow-query-localhost`).
    AllowOnly(Vec<IpAddr>),
    /// SERVFAIL to everything.
    ServfailAll,
    /// NOTAUTH to everything — unexpected outside TSIG processing, yet
    /// observed on 8 domains' nameservers (§4.2.13).
    NotAuthAll,
    /// Silently drop every query (dead host).
    Timeout,
    /// Pre-EDNS legacy server: answers, but ignores the OPT record and
    /// never includes one in responses (§4.2.6 *Invalid Data*).
    NoEdns,
    /// REFUSED for queries without the RD bit — breaks iterative
    /// resolution while looking fine to stub clients (§4.2.14).
    RefuseNonRecursive,
}

impl Behavior {
    /// The standard localhost ACL used by `allow-query-localhost`.
    pub fn allow_localhost_only() -> Self {
        Behavior::AllowOnly(vec![
            "127.0.0.1".parse().expect("valid"),
            "::1".parse().expect("valid"),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn localhost_acl_contents() {
        match Behavior::allow_localhost_only() {
            Behavior::AllowOnly(addrs) => {
                assert_eq!(addrs.len(), 2);
                assert!(addrs.iter().all(|a| a.is_loopback()));
            }
            _ => unreachable!(),
        }
    }
}
