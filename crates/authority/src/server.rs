//! The authoritative query-processing state machine.

use crate::behavior::Behavior;
use crate::denial::{
    no_ds_proof, nodata_proof, nsec_nodata_proof, nsec_nxdomain_proof, nxdomain_proof,
    zone_nsec3_params, zone_uses_nsec,
};
use crate::store::ZoneStore;
use ede_netsim::{Server, ServerResponse};
use ede_trace::{TraceEvent, Tracer};
use ede_wire::{Edns, Message, Name, Rcode, Rdata, RrType};
use ede_zone::{Rrset, Zone};
use std::net::IpAddr;
use std::sync::Mutex;

/// An authoritative nameserver: a zone store plus a behavior mode.
pub struct ZoneServer {
    store: ZoneStore,
    behavior: Behavior,
    tracer: Mutex<Tracer>,
    payload_cap: Option<u16>,
}

impl ZoneServer {
    /// A well-behaved server over `store`.
    pub fn new(store: ZoneStore) -> Self {
        ZoneServer {
            store,
            behavior: Behavior::Normal,
            tracer: Mutex::new(Tracer::disabled()),
            payload_cap: None,
        }
    }

    /// A server with an explicit behavior mode.
    pub fn with_behavior(store: ZoneStore, behavior: Behavior) -> Self {
        ZoneServer {
            store,
            behavior,
            tracer: Mutex::new(Tracer::disabled()),
            payload_cap: None,
        }
    }

    /// Cap this server's UDP answers at `cap` bytes (floored at the
    /// classic 512): a datagram answer whose encoding exceeds
    /// `min(cap, the client's advertised EDNS payload size)` goes out
    /// as its TC=1 truncation instead, and the full answer is only
    /// served over the stream channel. No cap (the default) means the
    /// datagram path always carries the full answer.
    pub fn with_payload_cap(mut self, cap: u16) -> Self {
        self.payload_cap = Some(cap.max(512));
        self
    }

    /// Attach a tracer: every answered query emits an
    /// [`TraceEvent::AuthorityAnswer`] (dropped queries emit nothing —
    /// the client side records the timeout).
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.lock().expect("no poisoning") = tracer;
    }

    /// The configured behavior.
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// Zones served.
    pub fn store(&self) -> &ZoneStore {
        &self.store
    }

    /// Process one query.
    pub fn answer(&self, query: &Message, src: IpAddr) -> ServerResponse {
        let resp = self.answer_inner(query, src);
        if let ServerResponse::Reply(m) = &resp {
            let tracer = self.tracer.lock().expect("no poisoning").clone();
            if tracer.enabled() {
                let zone = query
                    .first_question()
                    .and_then(|q| self.store.find(&q.name))
                    .map(|z| z.apex().to_string())
                    .unwrap_or_else(|| "-".to_string());
                tracer.emit(TraceEvent::AuthorityAnswer {
                    zone,
                    rcode: m.rcode.to_u16(),
                });
            }
        }
        resp
    }

    fn answer_inner(&self, query: &Message, src: IpAddr) -> ServerResponse {
        // Behavior gates run before any zone logic, like a front-end ACL.
        match &self.behavior {
            Behavior::Timeout => return ServerResponse::Drop,
            Behavior::RefuseAll => return rcode_reply(query, Rcode::Refused),
            Behavior::AllowOnly(allowed) if !allowed.contains(&src) => {
                return rcode_reply(query, Rcode::Refused)
            }
            Behavior::ServfailAll => return rcode_reply(query, Rcode::ServFail),
            Behavior::NotAuthAll => return rcode_reply(query, Rcode::NotAuth),
            Behavior::RefuseNonRecursive if !query.recursion_desired => {
                return rcode_reply(query, Rcode::Refused)
            }
            _ => {}
        }

        let Some(q) = query.first_question() else {
            return rcode_reply(query, Rcode::FormErr);
        };
        let qname = q.name.clone();
        let qtype = q.qtype;

        let edns_aware = self.behavior != Behavior::NoEdns;
        let dnssec_ok = edns_aware && query.edns.as_ref().is_some_and(|e| e.dnssec_ok);

        let mut resp = Message::response_to(query);
        if edns_aware && query.edns.is_some() {
            resp.edns = Some(Edns {
                dnssec_ok,
                ..Default::default()
            });
        }

        let Some(zone) = self.store.find(&qname) else {
            resp.rcode = Rcode::Refused;
            return ServerResponse::Reply(resp);
        };

        // Zone-cut handling: DS is answered by the parent; everything
        // else at or below the cut gets a referral.
        if let Some(deleg) = zone.find_delegation(&qname) {
            let deleg_name = deleg.name.clone();
            if deleg_name == qname && qtype == RrType::Ds {
                self.answer_authoritative(&mut resp, zone, &qname, qtype, dnssec_ok);
            } else {
                self.answer_referral(&mut resp, zone, &deleg_name, dnssec_ok);
            }
            return ServerResponse::Reply(resp);
        }

        self.answer_authoritative(&mut resp, zone, &qname, qtype, dnssec_ok);
        ServerResponse::Reply(resp)
    }

    /// Fill a referral response for a delegation owned by `zone`.
    fn answer_referral(&self, resp: &mut Message, zone: &Zone, deleg: &Name, dnssec_ok: bool) {
        resp.authoritative = false;
        let ns_set = zone
            .get(deleg, RrType::Ns)
            .expect("caller verified the delegation");
        resp.authorities.extend(ns_set.records());

        if dnssec_ok {
            if let Some(ds) = zone.get(deleg, RrType::Ds) {
                push_rrset(&mut resp.authorities, ds, true);
            } else if zone_uses_nsec(zone) {
                resp.authorities
                    .extend(nsec_nodata_proof(zone, deleg, true));
            } else if let Some(params) = zone_nsec3_params(zone) {
                resp.authorities
                    .extend(no_ds_proof(zone, &params, deleg, true));
            }
        }

        // Glue for in-zone (or below-cut) nameserver names.
        for rd in &ns_set.rdatas {
            if let Rdata::Ns(ns_name) = rd {
                resp.additionals.extend(zone.glue_for(ns_name));
            }
        }
    }

    /// Fill an authoritative answer (positive, NODATA, or NXDOMAIN).
    fn answer_authoritative(
        &self,
        resp: &mut Message,
        zone: &Zone,
        qname: &Name,
        qtype: RrType,
        dnssec_ok: bool,
    ) {
        resp.authoritative = true;

        if let Some(set) = zone.get(qname, qtype) {
            push_rrset(&mut resp.answers, set, dnssec_ok);
            return;
        }

        // CNAME at the name (and the query is not for the CNAME itself):
        // answer the alias and chase in-zone.
        if qtype != RrType::Cname {
            let mut current = qname.clone();
            let mut chased = 0;
            while let Some(cname_set) = zone.get(&current, RrType::Cname) {
                push_rrset(&mut resp.answers, cname_set, dnssec_ok);
                let Some(Rdata::Cname(target)) = cname_set.rdatas.first() else {
                    break;
                };
                current = target.clone();
                chased += 1;
                if chased > 8 || !current.is_subdomain_of(zone.apex()) {
                    break;
                }
                if let Some(set) = zone.get(&current, qtype) {
                    push_rrset(&mut resp.answers, set, dnssec_ok);
                    break;
                }
            }
            if !resp.answers.is_empty() {
                return;
            }
        }

        // Negative answers carry the SOA; signed zones add denial proofs.
        let soa = zone.soa();
        let params = zone_nsec3_params(zone);
        let uses_nsec = zone_uses_nsec(zone);
        // A server that lost its NSEC3PARAM record no longer knows the
        // zone is NSEC3-signed: it cannot locate denial records and its
        // negative responses go out entirely unsigned — the behavior
        // behind the paper's `nsec3param-missing` / `no-nsec3param-nsec3`
        // cases. Plain-NSEC zones need no PARAM.
        let can_prove = uses_nsec || zone.get(zone.apex(), RrType::Nsec3param).is_some();
        let negative_dnssec = dnssec_ok && can_prove;

        if zone.name_exists_or_ent(qname) {
            // NODATA.
            if let Some(soa) = soa {
                push_rrset(&mut resp.authorities, soa, negative_dnssec);
            }
            if negative_dnssec {
                if uses_nsec {
                    resp.authorities
                        .extend(nsec_nodata_proof(zone, qname, true));
                } else if let Some(params) = &params {
                    resp.authorities
                        .extend(nodata_proof(zone, params, qname, true));
                }
            }
        } else {
            resp.rcode = Rcode::NxDomain;
            if let Some(soa) = soa {
                push_rrset(&mut resp.authorities, soa, negative_dnssec);
            }
            if negative_dnssec {
                if uses_nsec {
                    resp.authorities
                        .extend(nsec_nxdomain_proof(zone, qname, true));
                } else if let Some(params) = &params {
                    resp.authorities
                        .extend(nxdomain_proof(zone, params, qname, true));
                }
            }
        }
    }
}

impl Server for ZoneServer {
    fn handle(&self, query: &Message, src: IpAddr, _now: u32) -> ServerResponse {
        let resp = self.answer(query, src);
        let Some(cap) = self.payload_cap else {
            return resp;
        };
        match resp {
            ServerResponse::Reply(m) => {
                let limit = cap.min(query.advertised_payload_size());
                if !m.truncated && m.encoded_len() > usize::from(limit) {
                    ServerResponse::Reply(m.truncated_copy())
                } else {
                    ServerResponse::Reply(m)
                }
            }
            drop => drop,
        }
    }

    fn handle_stream(&self, query: &Message, src: IpAddr, _now: u32) -> ServerResponse {
        // Streams have no size limit: the full answer, cap or not.
        self.answer(query, src)
    }
}

/// Append an RRset (and, when `dnssec` is set, its RRSIGs) to a section.
fn push_rrset(section: &mut Vec<ede_wire::Record>, set: &Rrset, dnssec: bool) {
    section.extend(set.records());
    if dnssec {
        section.extend(set.sig_records());
    }
}

/// A minimal reply carrying only an RCODE (and mirrored EDNS).
fn rcode_reply(query: &Message, rcode: Rcode) -> ServerResponse {
    let mut resp = Message::response_to(query);
    resp.rcode = rcode;
    if query.edns.is_some() {
        resp.edns = Some(Edns::default());
    }
    ServerResponse::Reply(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::rdata::Soa;
    use ede_wire::Record;
    use ede_zone::{signer, SignerConfig, ZoneKeys};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn client() -> IpAddr {
        "203.0.113.99".parse().unwrap()
    }

    fn soa_rdata(apex: &str) -> Rdata {
        Rdata::Soa(Soa {
            mname: n(&format!("ns1.{apex}")),
            rname: n(&format!("hostmaster.{apex}")),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        })
    }

    /// A signed example.com with one secure and one insecure delegation.
    fn build_server() -> ZoneServer {
        let apex = n("example.com");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(apex.clone(), 3600, soa_rdata("example.com")));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.example.com")),
        ));
        z.add_a(n("ns1.example.com"), "192.0.2.1".parse().unwrap());
        z.add_a(apex.clone(), "192.0.2.2".parse().unwrap());
        z.add_a(n("www.example.com"), "192.0.2.3".parse().unwrap());
        z.add(Record::new(
            n("alias.example.com"),
            3600,
            Rdata::Cname(n("www.example.com")),
        ));
        // Secure delegation.
        z.add(Record::new(
            n("secure.example.com"),
            3600,
            Rdata::Ns(n("ns.secure.example.com")),
        ));
        z.add_a(n("ns.secure.example.com"), "192.0.2.10".parse().unwrap());
        z.add(Record::new(
            n("secure.example.com"),
            3600,
            Rdata::Ds {
                key_tag: 11,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0xaa; 32],
            },
        ));
        // Insecure delegation.
        z.add(Record::new(
            n("insecure.example.com"),
            3600,
            Rdata::Ns(n("ns.insecure.example.com")),
        ));
        z.add_a(n("ns.insecure.example.com"), "192.0.2.11".parse().unwrap());

        let keys = ZoneKeys::generate(&apex, 8, 2048);
        signer::sign_zone(&mut z, &keys, &SignerConfig::default());

        let mut store = ZoneStore::new();
        store.insert(z);
        ZoneServer::new(store)
    }

    fn reply(server: &ZoneServer, name: &str, qtype: RrType) -> Message {
        let q = Message::iterative_query(1, n(name), qtype);
        match server.answer(&q, client()) {
            ServerResponse::Reply(m) => m,
            ServerResponse::Drop => panic!("server dropped the query"),
        }
    }

    #[test]
    fn positive_answer_with_rrsigs() {
        let s = build_server();
        let m = reply(&s, "www.example.com", RrType::A);
        assert_eq!(m.rcode, Rcode::NoError);
        assert!(m.authoritative);
        assert!(m.answers.iter().any(|r| r.rtype() == RrType::A));
        assert!(m.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn cname_is_chased_in_zone() {
        let s = build_server();
        let m = reply(&s, "alias.example.com", RrType::A);
        assert!(m.answers.iter().any(|r| r.rtype() == RrType::Cname));
        assert!(m.answers.iter().any(|r| r.rtype() == RrType::A));
    }

    #[test]
    fn nodata_with_proof() {
        let s = build_server();
        let m = reply(&s, "www.example.com", RrType::Aaaa);
        assert_eq!(m.rcode, Rcode::NoError);
        assert!(m.answers.is_empty());
        assert!(m.authorities.iter().any(|r| r.rtype() == RrType::Soa));
        assert!(m.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));
    }

    #[test]
    fn nxdomain_with_proof() {
        let s = build_server();
        let m = reply(&s, "missing.example.com", RrType::A);
        assert_eq!(m.rcode, Rcode::NxDomain);
        let nsec3s = m
            .authorities
            .iter()
            .filter(|r| r.rtype() == RrType::Nsec3)
            .count();
        assert!(nsec3s >= 2);
    }

    #[test]
    fn payload_cap_truncates_udp_but_not_stream() {
        let s = build_server().with_payload_cap(512);
        // A signed NXDOMAIN carries several NSEC3s + RRSIGs — far more
        // than 512 bytes.
        let q = Message::iterative_query(1, n("missing.example.com"), RrType::A);
        let udp = match s.handle(&q, client(), 0) {
            ServerResponse::Reply(m) => m,
            ServerResponse::Drop => panic!("dropped"),
        };
        assert!(udp.truncated, "oversized datagram answer must set TC");
        assert!(udp.answers.is_empty() && udp.authorities.is_empty());
        assert_eq!(udp.rcode, Rcode::NxDomain, "rcode survives truncation");
        assert!(udp.encoded_len() <= 512);

        let tcp = match s.handle_stream(&q, client(), 0) {
            ServerResponse::Reply(m) => m,
            ServerResponse::Drop => panic!("dropped"),
        };
        assert!(!tcp.truncated);
        assert!(tcp.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));

        // Small answers pass the datagram path whole.
        let small = reply(&s, "www.example.com", RrType::A);
        let _ = small; // `reply` goes through answer(); check via handle:
        let sq = Message::iterative_query(2, n("example.com"), RrType::Soa);
        if let ServerResponse::Reply(m) = s.handle(&sq, client(), 0) {
            assert!(!m.truncated || m.encoded_len() > 512);
        }
    }

    #[test]
    fn secure_referral_carries_ds() {
        let s = build_server();
        let m = reply(&s, "host.secure.example.com", RrType::A);
        assert!(!m.authoritative);
        assert!(m.authorities.iter().any(|r| r.rtype() == RrType::Ns));
        assert!(m.authorities.iter().any(|r| r.rtype() == RrType::Ds));
        assert!(
            m.additionals.iter().any(|r| r.rtype() == RrType::A),
            "glue expected"
        );
    }

    #[test]
    fn insecure_referral_carries_nsec3_opt_out_proof() {
        let s = build_server();
        let m = reply(&s, "host.insecure.example.com", RrType::A);
        assert!(m.authorities.iter().any(|r| r.rtype() == RrType::Ns));
        assert!(!m.authorities.iter().any(|r| r.rtype() == RrType::Ds));
        assert!(m.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));
    }

    #[test]
    fn ds_query_answered_by_parent_side() {
        let s = build_server();
        let m = reply(&s, "secure.example.com", RrType::Ds);
        assert!(m.authoritative);
        assert!(m.answers.iter().any(|r| r.rtype() == RrType::Ds));
        assert!(m.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn out_of_zone_is_refused() {
        let s = build_server();
        let m = reply(&s, "elsewhere.org", RrType::A);
        assert_eq!(m.rcode, Rcode::Refused);
    }

    #[test]
    fn behavior_gates() {
        let make = |b| ZoneServer::with_behavior(ZoneStore::new(), b);
        let q = Message::iterative_query(9, n("x.example.com"), RrType::A);

        match make(Behavior::RefuseAll).answer(&q, client()) {
            ServerResponse::Reply(m) => assert_eq!(m.rcode, Rcode::Refused),
            _ => panic!(),
        }
        match make(Behavior::ServfailAll).answer(&q, client()) {
            ServerResponse::Reply(m) => assert_eq!(m.rcode, Rcode::ServFail),
            _ => panic!(),
        }
        match make(Behavior::NotAuthAll).answer(&q, client()) {
            ServerResponse::Reply(m) => assert_eq!(m.rcode, Rcode::NotAuth),
            _ => panic!(),
        }
        assert!(matches!(
            make(Behavior::Timeout).answer(&q, client()),
            ServerResponse::Drop
        ));
    }

    #[test]
    fn acl_allows_listed_sources_only() {
        let s = ZoneServer::with_behavior(ZoneStore::new(), Behavior::allow_localhost_only());
        let q = Message::iterative_query(9, n("x.example.com"), RrType::A);
        match s.answer(&q, client()) {
            ServerResponse::Reply(m) => assert_eq!(m.rcode, Rcode::Refused),
            _ => panic!(),
        }
        // Localhost gets past the ACL (then REFUSED for no zone — but
        // with a different path: the zone lookup).
        match s.answer(&q, "127.0.0.1".parse().unwrap()) {
            ServerResponse::Reply(m) => assert_eq!(m.rcode, Rcode::Refused),
            _ => panic!(),
        }
    }

    #[test]
    fn refuse_non_recursive_passes_rd_queries() {
        let store_server = ZoneServer::with_behavior(
            {
                let mut st = ZoneStore::new();
                st.insert(Zone::new(n("example.com")));
                st
            },
            Behavior::RefuseNonRecursive,
        );
        let iterative = Message::iterative_query(1, n("example.com"), RrType::A);
        match store_server.answer(&iterative, client()) {
            ServerResponse::Reply(m) => assert_eq!(m.rcode, Rcode::Refused),
            _ => panic!(),
        }
        let recursive = Message::query(1, n("example.com"), RrType::A);
        match store_server.answer(&recursive, client()) {
            ServerResponse::Reply(m) => assert_ne!(m.rcode, Rcode::Refused),
            _ => panic!(),
        }
    }

    #[test]
    fn no_edns_server_omits_opt() {
        let apex = n("legacy.example");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(apex.clone(), 3600, soa_rdata("legacy.example")));
        z.add_a(apex, "192.0.2.77".parse().unwrap());
        let mut store = ZoneStore::new();
        store.insert(z);
        let s = ZoneServer::with_behavior(store, Behavior::NoEdns);
        let q = Message::iterative_query(1, n("legacy.example"), RrType::A);
        match s.answer(&q, client()) {
            ServerResponse::Reply(m) => {
                assert!(m.edns.is_none(), "legacy server must not echo OPT");
                assert!(m.answers.iter().any(|r| r.rtype() == RrType::A));
                assert!(
                    !m.answers.iter().any(|r| r.rtype() == RrType::Rrsig),
                    "no EDNS implies no DO implies no DNSSEC records"
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn without_do_bit_no_dnssec_records() {
        let s = build_server();
        let mut q = Message::iterative_query(1, n("www.example.com"), RrType::A);
        q.edns.as_mut().unwrap().dnssec_ok = false;
        match s.answer(&q, client()) {
            ServerResponse::Reply(m) => {
                assert!(m.answers.iter().any(|r| r.rtype() == RrType::A));
                assert!(!m.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
            }
            _ => panic!(),
        }
    }
}
