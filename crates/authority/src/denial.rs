//! Assembly of authenticated denial-of-existence proofs (RFC 5155 §7.2).

use ede_wire::{Name, Rdata, Record, RrType};
use ede_zone::{nsec, nsec3, Nsec3Config, Rrset, Zone};

/// Read the zone's NSEC3 parameters.
///
/// Prefer the apex NSEC3PARAM; when it is missing (the
/// `nsec3param-missing` mutation) fall back to the parameters embedded in
/// any NSEC3 record — BIND-family servers lose the ability to *locate*
/// denial records without the PARAM, which we model in the server layer,
/// but other code (and the resolver's diagnosis) can still recover the
/// parameters this way.
pub fn zone_nsec3_params(zone: &Zone) -> Option<Nsec3Config> {
    if let Some(set) = zone.get(zone.apex(), RrType::Nsec3param) {
        if let Some(Rdata::Nsec3param {
            iterations, salt, ..
        }) = set.rdatas.first()
        {
            return Some(Nsec3Config {
                iterations: *iterations,
                salt: salt.clone(),
            });
        }
    }
    zone.iter()
        .filter(|s| s.rtype == RrType::Nsec3)
        .find_map(|s| match s.rdatas.first() {
            Some(Rdata::Nsec3 {
                iterations, salt, ..
            }) => Some(Nsec3Config {
                iterations: *iterations,
                salt: salt.clone(),
            }),
            _ => None,
        })
}

/// Collect an RRset plus its signatures as records.
fn emit(set: &Rrset, dnssec: bool, out: &mut Vec<Record>) {
    out.extend(set.records());
    if dnssec {
        out.extend(set.sig_records());
    }
}

/// Are the zone's NSEC3 records' embedded parameters consistent with the
/// parameters the server is hashing with? When they are and a hash lookup
/// still fails, the chain's owner names are damaged — a real server's
/// tree walk then returns *nearby* (wrong) records rather than nothing,
/// whereas a salt mismatch makes every computed hash meaningless and the
/// lookup comes back empty. The testbed's `bad-nsec3-hash` vs
/// `bad-nsec3param-salt` cases are distinguishable on the wire only
/// because of this difference.
fn params_consistent(zone: &Zone, params: &Nsec3Config) -> bool {
    zone.iter()
        .filter(|s| s.rtype == RrType::Nsec3)
        .any(|s| match s.rdatas.first() {
            Some(Rdata::Nsec3 {
                salt, iterations, ..
            }) => *salt == params.salt && *iterations == params.iterations,
            _ => false,
        })
}

/// Fallback inclusion: the first couple of NSEC3 RRsets in canonical
/// order, standing in for a tree-predecessor walk over a damaged chain.
fn nearby_nsec3(zone: &Zone, dnssec: bool, out: &mut Vec<Record>) {
    for set in zone.iter().filter(|s| s.rtype == RrType::Nsec3).take(2) {
        emit(set, dnssec, out);
    }
}

/// NSEC3 proof for a NODATA answer: the single NSEC3 matching `qname`
/// (whose bitmap shows the queried type absent).
pub fn nodata_proof(zone: &Zone, params: &Nsec3Config, qname: &Name, dnssec: bool) -> Vec<Record> {
    let mut out = Vec::new();
    if let Some(set) = nsec3::find_matching(zone, params, qname) {
        emit(set, dnssec, &mut out);
    }
    if out.is_empty() && params_consistent(zone, params) {
        nearby_nsec3(zone, dnssec, &mut out);
    }
    out
}

/// NSEC3 proof for NXDOMAIN: match the closest encloser, cover the next
/// closer name, and cover the source-of-synthesis wildcard.
pub fn nxdomain_proof(
    zone: &Zone,
    params: &Nsec3Config,
    qname: &Name,
    dnssec: bool,
) -> Vec<Record> {
    let mut out = Vec::new();

    // Closest encloser: deepest ancestor of qname that exists.
    let mut encloser = qname.parent();
    while let Some(e) = encloser.clone() {
        if zone.name_exists(&e) || e == *zone.apex() {
            break;
        }
        encloser = e.parent();
    }
    let encloser = encloser.unwrap_or_else(|| zone.apex().clone());

    // Next closer: the child of the encloser on the qname path.
    let depth_diff = qname.label_count() - encloser.label_count();
    let mut next_closer = qname.clone();
    for _ in 1..depth_diff {
        next_closer = next_closer.parent().expect("above qname");
    }

    let mut seen = std::collections::BTreeSet::new();
    let mut push_unique = |set: Option<&Rrset>, out: &mut Vec<Record>| {
        if let Some(set) = set {
            if seen.insert(set.name.clone()) {
                emit(set, dnssec, out);
            }
        }
    };

    push_unique(nsec3::find_matching(zone, params, &encloser), &mut out);
    push_unique(nsec3::find_covering(zone, params, &next_closer), &mut out);
    if let Ok(wildcard) = encloser.child("*") {
        push_unique(nsec3::find_covering(zone, params, &wildcard), &mut out);
    }
    if out.is_empty() && params_consistent(zone, params) {
        nearby_nsec3(zone, dnssec, &mut out);
    }
    out
}

/// NSEC3 proof that a delegation is insecure (no DS): the NSEC3 matching
/// the delegation owner, whose bitmap has NS but not DS.
pub fn no_ds_proof(zone: &Zone, params: &Nsec3Config, deleg: &Name, dnssec: bool) -> Vec<Record> {
    nodata_proof(zone, params, deleg, dnssec)
}

/// Does the zone use plain NSEC denial (any NSEC RRset present)?
pub fn zone_uses_nsec(zone: &Zone) -> bool {
    zone.get(zone.apex(), RrType::Nsec).is_some()
}

/// Plain-NSEC proof for a NODATA answer: the NSEC matching `qname`.
pub fn nsec_nodata_proof(zone: &Zone, qname: &Name, dnssec: bool) -> Vec<Record> {
    let mut out = Vec::new();
    if let Some(set) = nsec::find_matching(zone, qname) {
        emit(set, dnssec, &mut out);
    }
    out
}

/// Plain-NSEC proof for NXDOMAIN: cover the name and the wildcard at the
/// closest encloser (RFC 4035 §3.1.3.2).
pub fn nsec_nxdomain_proof(zone: &Zone, qname: &Name, dnssec: bool) -> Vec<Record> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut push_unique = |set: Option<&Rrset>, out: &mut Vec<Record>| {
        if let Some(set) = set {
            if seen.insert(set.name.clone()) {
                emit(set, dnssec, out);
            }
        }
    };
    push_unique(nsec::find_covering(zone, qname), &mut out);
    // Wildcard cover at the closest existing encloser.
    let mut encloser = qname.parent();
    while let Some(e) = encloser.clone() {
        if zone.name_exists_or_ent(&e) || e == *zone.apex() {
            break;
        }
        encloser = e.parent();
    }
    if let Some(e) = encloser {
        if let Ok(wildcard) = e.child("*") {
            push_unique(nsec::find_covering(zone, &wildcard), &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::rdata::Soa;
    use ede_wire::Record;
    use ede_zone::{signer, SignerConfig, ZoneKeys};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn signed_zone() -> Zone {
        let apex = n("example.com");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.example.com")),
        ));
        z.add_a(n("ns1.example.com"), "192.0.2.1".parse().unwrap());
        z.add_a(apex, "192.0.2.2".parse().unwrap());
        let keys = ZoneKeys::generate(&n("example.com"), 8, 2048);
        signer::sign_zone(&mut z, &keys, &SignerConfig::default());
        z
    }

    #[test]
    fn params_prefer_nsec3param() {
        let z = signed_zone();
        let p = zone_nsec3_params(&z).unwrap();
        assert_eq!(p.iterations, 0);
        assert_eq!(p.salt, vec![0xab, 0xcd]);
    }

    #[test]
    fn params_fall_back_to_chain() {
        let mut z = signed_zone();
        z.remove(&n("example.com"), RrType::Nsec3param);
        assert!(zone_nsec3_params(&z).is_some());
    }

    #[test]
    fn nodata_proof_matches_qname() {
        let z = signed_zone();
        let p = zone_nsec3_params(&z).unwrap();
        // AAAA at apex doesn't exist — NODATA; proof = apex matcher.
        let proof = nodata_proof(&z, &p, &n("example.com"), true);
        assert!(!proof.is_empty());
        assert!(proof.iter().any(|r| r.rtype() == RrType::Nsec3));
        assert!(proof.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn nxdomain_proof_has_encloser_and_cover() {
        let z = signed_zone();
        let p = zone_nsec3_params(&z).unwrap();
        let proof = nxdomain_proof(&z, &p, &n("nonexistent.example.com"), true);
        let nsec3s = proof.iter().filter(|r| r.rtype() == RrType::Nsec3).count();
        // Closest-encloser match (apex) + next-closer cover; the wildcard
        // cover may coincide with the next-closer interval.
        assert!(nsec3s >= 2, "got {nsec3s} NSEC3 records");
    }

    #[test]
    fn without_do_no_rrsigs() {
        let z = signed_zone();
        let p = zone_nsec3_params(&z).unwrap();
        let proof = nodata_proof(&z, &p, &n("example.com"), false);
        assert!(proof.iter().all(|r| r.rtype() != RrType::Rrsig));
    }
}
