//! # extended-dns-errors
//!
//! A comprehensive Rust reproduction of *"Extended DNS Errors: Unlocking
//! the Full Potential of DNS Troubleshooting"* (Nosyk, Korczyński &
//! Duda, IMC 2023).
//!
//! The paper measures how seven DNS resolver implementations use
//! RFC 8914 Extended DNS Errors (EDE) when facing 63 deliberately
//! misconfigured zones, and what EDE codes 303 million registered
//! domains trigger through Cloudflare DNS. This crate family rebuilds
//! the entire measurement apparatus:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | Wire protocol | [`wire`] | DNS messages, EDNS(0), the EDE option, IANA registries |
//! | Crypto | [`crypto`] | SHA-1/256/384, key tags, NSEC3 hashing, simulated signatures |
//! | Zones | [`zone`] | Zone model, DNSSEC signer, Table 3's misconfiguration mutators |
//! | Network | [`netsim`] | Deterministic simulated internet, special-address registries |
//! | Authority | [`authority`] | Authoritative server with fault behaviors |
//! | Resolver | [`resolver`] | EDE-capable validating resolver + seven vendor profiles |
//! | Testbed | [`testbed`] | The 63-domain `extended-dns-errors.com` infrastructure |
//! | Scan | [`scan`] | The Internet-wide scan at configurable scale |
//! | Observability | [`trace`] | Resolution tracing, JSONL export, live metrics |
//! | Serving | [`server`] | Concurrent UDP+TCP front end over real OS sockets |
//!
//! ## Quickstart
//!
//! ```
//! use extended_dns_errors::prelude::*;
//!
//! // Build the paper's testbed and ask Cloudflare-profile and
//! // Unbound-profile resolvers about one broken domain.
//! let tb = Testbed::build();
//! let spec = tb.spec("rrsig-exp-all").expect("part of the testbed");
//! let qname = tb.query_name(spec);
//!
//! let cloudflare = tb.resolver(Vendor::Cloudflare);
//! let res = cloudflare.resolve(&qname, RrType::A);
//! assert_eq!(res.rcode, Rcode::ServFail);
//! assert_eq!(res.ede_codes(), vec![7]); // Signature Expired
//!
//! let bind = tb.resolver(Vendor::Bind9);
//! assert!(bind.resolve(&qname, RrType::A).ede_codes().is_empty());
//! ```
//!
//! The [`server`] crate binds any simulated resolver or testbed to real
//! OS sockets — sharded UDP workers plus a TCP listener with RFC 1035
//! framing — so external tools (e.g. `dig +ednsopt=15`) can query the
//! reproduction; `cargo run --bin repro-serve` starts it. The [`udp`]
//! module holds the deprecated single-threaded predecessor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ede_authority as authority;
pub use ede_crypto as crypto;
pub use ede_netsim as netsim;
pub use ede_resolver as resolver;
pub use ede_scan as scan;
pub use ede_server as server;
pub use ede_testbed as testbed;
pub use ede_trace as trace;
pub use ede_wire as wire;
pub use ede_zone as zone;

pub mod udp;

pub use udp::FrontendError;

/// The one-line import for applications.
///
/// Curated for the common workflows: building the testbed, configuring
/// resolvers (via [`ResolverConfig::builder`](ede_resolver::ResolverConfig::builder)),
/// running scans (via [`ScanConfig::builder`](ede_scan::ScanConfig::builder)),
/// serving over real sockets (via
/// [`Server::spawn`](ede_server::Server::spawn) with
/// [`ServerConfig::builder`](ede_server::ServerConfig::builder)),
/// injecting faults ([`FaultPlan`](ede_netsim::FaultPlan)), and attaching
/// observability ([`ResolutionTrace`](ede_trace::ResolutionTrace)).
/// Structured error types from every layer ride along so `?`-style
/// plumbing needs no extra imports.
pub mod prelude {
    pub use ede_netsim::{FaultPlan, NetError, Network, SimClock};
    pub use ede_resolver::{
        Diagnosis, Resolution, Resolver, ResolverConfig, ResolverConfigBuilder, RetryPolicy,
        ServerSelection, Vendor, VendorProfile,
    };
    pub use ede_scan::{
        scan, scan_streaming, ChaosConfig, Population, PopulationConfig, QueryFilter, QueryRecord,
        ScanConfig, ScanConfigBuilder, ScanResult, ScanWorld, StatsSnapshot,
    };
    pub use ede_server::{
        ProbeClient, Server, ServerConfig, ServerConfigBuilder, ServerError, ServerHandle,
        ServerStats,
    };
    pub use ede_testbed::Testbed;
    pub use ede_trace::{
        Metrics, ResolutionTrace, ServerMetrics, ServerMetricsSnapshot, SnapshotSink, TraceEvent,
        TraceSink,
    };
    pub use ede_wire::{EdeCode, EdeEntry, Message, Name, Rcode, RrType, WireError};
    pub use ede_zone::{ParseError, ParseErrorKind};

    pub use crate::udp::FrontendError;
    #[allow(deprecated)]
    pub use crate::udp::UdpFrontend;
}
