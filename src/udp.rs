//! Deprecated single-threaded UDP front end.
//!
//! [`UdpFrontend`] predates the `ede-server` crate: one thread, one
//! socket, UDP only, no EDNS payload negotiation, no metrics. It is now
//! a thin shim over [`ede_server::pipeline`] — every datagram goes
//! through the same classify → resolve → encode path as the real
//! server, so the malformed-query policy and EDE emission are identical
//! on the wire — and it exists only to keep old callers compiling.
//!
//! New code should use [`Server`](ede_server::Server):
//!
//! ```no_run
//! use extended_dns_errors::prelude::*;
//!
//! let tb = Testbed::build();
//! let handle = Server::spawn(
//!     tb.resolver(Vendor::Cloudflare),
//!     ServerConfig::builder().bind("127.0.0.1:5300").build(),
//! ).expect("bind");
//! println!("serving on {}", handle.udp_addr());
//! ```

use ede_resolver::Resolver;
use ede_server::pipeline::{self, QueryDisposition};
use ede_server::ServerError;
use ede_wire::WireError;
use std::fmt;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Errors from the deprecated UDP front end.
///
/// The structured replacement is [`ServerError`]; `From` conversions in
/// both directions let old `Result<_, FrontendError>` plumbing coexist
/// with the new serving API.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrontendError {
    /// Socket-level failure (bind, receive, send).
    Io(io::Error),
    /// The reply could not be encoded to wire format.
    Encode(WireError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Io(e) => write!(f, "socket error: {e}"),
            FrontendError::Encode(e) => write!(f, "cannot encode reply: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Io(e) => Some(e),
            FrontendError::Encode(e) => Some(e),
        }
    }
}

impl From<io::Error> for FrontendError {
    fn from(e: io::Error) -> Self {
        FrontendError::Io(e)
    }
}

impl From<WireError> for FrontendError {
    fn from(e: WireError) -> Self {
        FrontendError::Encode(e)
    }
}

impl From<FrontendError> for ServerError {
    fn from(e: FrontendError) -> Self {
        match e {
            FrontendError::Io(e) => ServerError::Io(e),
            FrontendError::Encode(e) => ServerError::Wire(e),
        }
    }
}

impl From<ServerError> for FrontendError {
    fn from(e: ServerError) -> Self {
        match e {
            ServerError::Bind { source, .. } => FrontendError::Io(source),
            ServerError::Io(e) => FrontendError::Io(e),
            ServerError::Wire(e) => FrontendError::Encode(e),
            // InvalidConfig (and any future variant) has no legacy
            // shape; surface it as an io error rather than panicking.
            other => FrontendError::Io(io::Error::other(other.to_string())),
        }
    }
}

/// A single-threaded UDP server wrapping one simulated resolver.
#[deprecated(
    since = "0.1.0",
    note = "use ede_server::Server for concurrent UDP+TCP serving with EDNS negotiation and metrics"
)]
pub struct UdpFrontend {
    socket: UdpSocket,
    resolver: Arc<Resolver>,
    stop: Arc<AtomicBool>,
}

#[allow(deprecated)]
impl UdpFrontend {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, resolver: Arc<Resolver>) -> Result<UdpFrontend, FrontendError> {
        let socket = UdpSocket::bind(addr)?;
        Ok(UdpFrontend {
            socket,
            resolver,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr, FrontendError> {
        Ok(self.socket.local_addr()?)
    }

    /// A handle that makes `serve` return.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Handle exactly one request (test-friendly building block).
    ///
    /// Requests follow the `ede-server` pipeline policy: datagrams too
    /// short for a DNS header (or carrying QR=1) are dropped without a
    /// reply, protocol violations earn FORMERR/NOTIMP/REFUSED, and
    /// well-formed queries resolve. Responses over 1232 bytes are
    /// truncated with TC=1.
    pub fn serve_one(&self) -> Result<(), FrontendError> {
        let mut buf = [0u8; 4096];
        let (len, peer) = self.socket.recv_from(&mut buf)?;
        match pipeline::classify(&buf[..len]) {
            QueryDisposition::Drop(_) => Ok(()),
            QueryDisposition::Reject(reply, _) => {
                self.socket.send_to(&reply.encode()?, peer)?;
                Ok(())
            }
            QueryDisposition::Resolve(query) => {
                let reply = pipeline::answer(&self.resolver, None, &query);
                let (wire, _truncated) = pipeline::encode_udp(&reply, &query, 1232)?;
                self.socket.send_to(&wire, peer)?;
                Ok(())
            }
        }
    }

    /// Serve until the stop handle fires. Uses a short read timeout so
    /// the stop flag is observed promptly.
    pub fn serve(&self) -> Result<(), FrontendError> {
        self.socket
            .set_read_timeout(Some(std::time::Duration::from_millis(100)))?;
        while !self.stop.load(Ordering::Relaxed) {
            match self.serve_one() {
                Ok(()) => {}
                Err(FrontendError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Cancels a running [`UdpFrontend::serve`] loop.
#[deprecated(
    since = "0.1.0",
    note = "use ede_server::ServerHandle::trigger_shutdown instead"
)]
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
}

#[allow(deprecated)]
impl StopHandle {
    /// Request the serve loop to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use ede_resolver::Vendor;
    use ede_testbed::Testbed;
    use ede_wire::{EdeCode, Message, Name, Rcode, RrType};
    use std::time::Duration;

    #[test]
    fn udp_roundtrip_with_ede() {
        let tb = Testbed::build();
        let resolver = Arc::new(tb.resolver(Vendor::Cloudflare));
        let server = UdpFrontend::bind("127.0.0.1:0", resolver).expect("bind");
        let addr = server.local_addr().expect("addr");

        let client = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        let qname = Name::parse("rrsig-exp-all.extended-dns-errors.com").unwrap();
        let query = Message::query(0x4242, qname, RrType::A);
        client
            .send_to(&query.encode().unwrap(), addr)
            .expect("send");

        server.serve_one().expect("serve one request");

        let mut buf = [0u8; 4096];
        let (len, _) = client.recv_from(&mut buf).expect("recv");
        let reply = Message::decode(&buf[..len]).expect("decode reply");
        assert_eq!(reply.id, 0x4242);
        assert_eq!(reply.rcode, Rcode::ServFail);
        assert_eq!(reply.ede_codes(), vec![EdeCode::SignatureExpired]);
    }

    #[test]
    fn malformed_datagram_gets_formerr() {
        let tb = Testbed::build();
        let resolver = Arc::new(tb.resolver(Vendor::Unbound));
        let server = UdpFrontend::bind("127.0.0.1:0", resolver).expect("bind");
        let addr = server.local_addr().expect("addr");

        // A valid header claiming one question, cut off mid-question:
        // enough structure to earn FORMERR with the ID echoed.
        let qname = Name::parse("valid.extended-dns-errors.com").unwrap();
        let mut garbage = Message::query(0xABCD, qname, RrType::A).encode().unwrap();
        garbage.truncate(14);

        let client = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        client.send_to(&garbage, addr).expect("send");
        server.serve_one().expect("serve");

        let mut buf = [0u8; 512];
        let (len, _) = client.recv_from(&mut buf).expect("recv");
        let reply = Message::decode(&buf[..len]).expect("decode");
        assert_eq!(reply.id, 0xABCD);
        assert_eq!(reply.rcode, Rcode::FormErr);
    }

    #[test]
    fn short_datagram_is_dropped_not_answered() {
        let tb = Testbed::build();
        let resolver = Arc::new(tb.resolver(Vendor::Unbound));
        let server = UdpFrontend::bind("127.0.0.1:0", resolver).expect("bind");
        let addr = server.local_addr().expect("addr");

        let client = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        client
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        // Under 12 bytes there is no trustworthy ID to echo; the old
        // behaviour (FORMERR guessing the ID) was a forgery oracle.
        client.send_to(&[0xAB, 0xCD, 0xFF], addr).expect("send");
        server.serve_one().expect("serve");

        let mut buf = [0u8; 512];
        assert!(client.recv_from(&mut buf).is_err(), "no reply expected");
    }

    #[test]
    fn frontend_error_maps_into_server_error() {
        let io_err = FrontendError::Io(io::Error::from(io::ErrorKind::ConnectionRefused));
        assert!(matches!(ServerError::from(io_err), ServerError::Io(_)));

        let enc = FrontendError::Encode(WireError::BadCount);
        assert!(matches!(ServerError::from(enc), ServerError::Wire(_)));

        let back = FrontendError::from(ServerError::Bind {
            addr: "x".into(),
            source: io::Error::from(io::ErrorKind::PermissionDenied),
        });
        assert!(matches!(back, FrontendError::Io(_)));
        let back = FrontendError::from(ServerError::InvalidConfig("workers"));
        assert!(matches!(back, FrontendError::Io(_)));
    }
}
