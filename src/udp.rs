//! A real-socket front end: serve a simulated resolver over UDP.
//!
//! The measurement pipeline is sans-IO by design, but a reproduction you
//! can point `dig` at is worth having. [`UdpFrontend`] binds a
//! `std::net::UdpSocket`, decodes each datagram with [`ede_wire`],
//! resolves it through the attached [`Resolver`] (full recursion,
//! validation, vendor EDE emission), and writes the wire response back.

use ede_resolver::Resolver;
use ede_wire::{Message, Rcode, WireError};
use std::fmt;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Errors from the UDP front end, split by layer instead of being
/// flattened into `io::Error` strings.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrontendError {
    /// Socket-level failure (bind, receive, send).
    Io(io::Error),
    /// The reply could not be encoded to wire format.
    Encode(WireError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Io(e) => write!(f, "socket error: {e}"),
            FrontendError::Encode(e) => write!(f, "cannot encode reply: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Io(e) => Some(e),
            FrontendError::Encode(e) => Some(e),
        }
    }
}

impl From<io::Error> for FrontendError {
    fn from(e: io::Error) -> Self {
        FrontendError::Io(e)
    }
}

impl From<WireError> for FrontendError {
    fn from(e: WireError) -> Self {
        FrontendError::Encode(e)
    }
}

/// A UDP server wrapping one simulated resolver.
pub struct UdpFrontend {
    socket: UdpSocket,
    resolver: Arc<Resolver>,
    stop: Arc<AtomicBool>,
}

impl UdpFrontend {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str, resolver: Arc<Resolver>) -> Result<UdpFrontend, FrontendError> {
        let socket = UdpSocket::bind(addr)?;
        Ok(UdpFrontend {
            socket,
            resolver,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr, FrontendError> {
        Ok(self.socket.local_addr()?)
    }

    /// A handle that makes `serve` return.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Handle exactly one request (test-friendly building block).
    pub fn serve_one(&self) -> Result<(), FrontendError> {
        let mut buf = [0u8; 4096];
        let (len, peer) = self.socket.recv_from(&mut buf)?;
        let reply = match Message::decode(&buf[..len]) {
            Ok(query) => self.answer(&query),
            Err(_) => {
                // Unparseable: a minimal FORMERR with whatever ID we can
                // salvage.
                let id = if len >= 2 {
                    u16::from_be_bytes([buf[0], buf[1]])
                } else {
                    0
                };
                let mut m = Message {
                    id,
                    response: true,
                    rcode: Rcode::FormErr,
                    ..Default::default()
                };
                m.recursion_available = true;
                m
            }
        };
        let wire = reply.encode()?;
        self.socket.send_to(&wire, peer)?;
        Ok(())
    }

    /// Serve until the stop handle fires. Uses a short read timeout so
    /// the stop flag is observed promptly.
    pub fn serve(&self) -> Result<(), FrontendError> {
        self.socket
            .set_read_timeout(Some(std::time::Duration::from_millis(100)))?;
        while !self.stop.load(Ordering::Relaxed) {
            match self.serve_one() {
                Ok(()) => {}
                Err(FrontendError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn answer(&self, query: &Message) -> Message {
        let Some(q) = query.first_question() else {
            let mut m = Message::response_to(query);
            m.rcode = Rcode::FormErr;
            return m;
        };
        let resolution = self.resolver.resolve(&q.name.clone(), q.qtype);
        resolution.to_message(query)
    }
}

/// Cancels a running [`UdpFrontend::serve`] loop.
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
}

impl StopHandle {
    /// Request the serve loop to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_resolver::Vendor;
    use ede_testbed::Testbed;
    use ede_wire::{EdeCode, Name, RrType};

    #[test]
    fn udp_roundtrip_with_ede() {
        let tb = Testbed::build();
        let resolver = Arc::new(tb.resolver(Vendor::Cloudflare));
        let server = UdpFrontend::bind("127.0.0.1:0", resolver).expect("bind");
        let addr = server.local_addr().expect("addr");

        let client = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        let qname = Name::parse("rrsig-exp-all.extended-dns-errors.com").unwrap();
        let query = Message::query(0x4242, qname, RrType::A);
        client
            .send_to(&query.encode().unwrap(), addr)
            .expect("send");

        server.serve_one().expect("serve one request");

        let mut buf = [0u8; 4096];
        let (len, _) = client.recv_from(&mut buf).expect("recv");
        let reply = Message::decode(&buf[..len]).expect("decode reply");
        assert_eq!(reply.id, 0x4242);
        assert_eq!(reply.rcode, Rcode::ServFail);
        assert_eq!(reply.ede_codes(), vec![EdeCode::SignatureExpired]);
    }

    #[test]
    fn malformed_datagram_gets_formerr() {
        let tb = Testbed::build();
        let resolver = Arc::new(tb.resolver(Vendor::Unbound));
        let server = UdpFrontend::bind("127.0.0.1:0", resolver).expect("bind");
        let addr = server.local_addr().expect("addr");

        let client = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        client.send_to(&[0xAB, 0xCD, 0xFF], addr).expect("send");
        server.serve_one().expect("serve");

        let mut buf = [0u8; 512];
        let (len, _) = client.recv_from(&mut buf).expect("recv");
        let reply = Message::decode(&buf[..len]).expect("decode");
        assert_eq!(reply.id, 0xABCD);
        assert_eq!(reply.rcode, Rcode::FormErr);
    }
}
