#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans every tracked ``*.md`` file (skipping ``target/`` and ``.git/``)
for inline links ``[text](target)`` and reference definitions
``[label]: target``, and fails if a relative target does not exist on
disk. External links (``http://``, ``https://``, ``mailto:``) and
pure-fragment links (``#section``) are ignored; fragments on relative
links are stripped before the existence check.

Run from anywhere: paths are resolved against the repository root
(the parent of this script's directory). Exit status is the number of
broken links, capped at 1 for shell friendliness.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SKIP_DIRS = {"target", ".git", "node_modules"}

# [text](target) — target ends at the first unbalanced ')'
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [label]: target   (reference-style definition at line start)
REFDEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.MULTILINE)


def is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def strip_code_spans(text: str) -> str:
    """Drop fenced code blocks and inline code — links there are examples."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(md: Path) -> list[str]:
    text = strip_code_spans(md.read_text(encoding="utf-8"))
    broken = []
    targets = INLINE.findall(text) + REFDEF.findall(text)
    for target in targets:
        if is_external(target) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            broken.append(f"{md.relative_to(ROOT)}: broken link -> {target}")
    return broken


def main() -> int:
    broken = []
    for md in sorted(ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in md.relative_to(ROOT).parts):
            continue
        broken.extend(check_file(md))
    for line in broken:
        print(line, file=sys.stderr)
    if broken:
        print(f"{len(broken)} broken markdown link(s)", file=sys.stderr)
        return 1
    print("markdown links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
