//! A dig-style troubleshooting CLI over the simulated testbed.
//!
//! Run with:
//!
//! ```text
//! cargo run --example troubleshoot -- <subdomain> [vendor]
//! cargo run --example troubleshoot -- allow-query-none cloudflare
//! cargo run --example troubleshoot -- --list
//! ```

use extended_dns_errors::prelude::*;

fn parse_vendor(s: &str) -> Option<Vendor> {
    match s.to_ascii_lowercase().as_str() {
        "bind" | "bind9" => Some(Vendor::Bind9),
        "unbound" => Some(Vendor::Unbound),
        "powerdns" | "pdns" => Some(Vendor::PowerDns),
        "knot" => Some(Vendor::Knot),
        "cloudflare" | "cf" => Some(Vendor::Cloudflare),
        "quad9" => Some(Vendor::Quad9),
        "opendns" => Some(Vendor::OpenDns),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tb = Testbed::build();

    if args.first().map(String::as_str) == Some("--list") || args.is_empty() {
        println!("Available testbed subdomains (see the paper's Table 2):\n");
        for spec in &tb.specs {
            println!("  [group {}] {}", spec.group, spec.label);
        }
        println!("\nUsage: troubleshoot <subdomain> [vendor]");
        return;
    }

    let label = &args[0];
    let vendor = args
        .get(1)
        .and_then(|s| parse_vendor(s))
        .unwrap_or(Vendor::Cloudflare);

    let Some(spec) = tb.spec(label) else {
        eprintln!("unknown subdomain {label:?}; try --list");
        std::process::exit(1);
    };

    let qname = tb.query_name(spec);
    let resolver = tb.resolver(vendor);
    let res = resolver.resolve(&qname, RrType::A);

    println!("; <<>> extended-dns-errors troubleshoot <<>> {qname} A");
    println!("; vendor profile: {}\n", vendor.name());

    // The wire response, rendered the way dig would show it.
    let query = Message::query(0x1d1d, qname, RrType::A);
    let reply = res.to_message(&query);
    print!("{}", extended_dns_errors::wire::text::render_dig(&reply));

    // The resolver's own structured diagnosis, explained for operators.
    println!("\n;; DIAGNOSIS:");
    print!("{}", extended_dns_errors::resolver::explain::explain(&res.diagnosis));
}
