//! A dig-style troubleshooting CLI over the simulated testbed.
//!
//! Run with:
//!
//! ```text
//! cargo run --example troubleshoot -- <subdomain> [vendor] [--trace | --trace-json]
//! cargo run --example troubleshoot -- allow-query-none cloudflare
//! cargo run --example troubleshoot -- rrsig-exp-all cloudflare --trace
//! cargo run --example troubleshoot -- --list
//! cargo run --example troubleshoot -- --log scan.jsonl --query code=23,tld=com
//! ```
//!
//! `--trace` appends a dig+trace-style timeline of the resolution —
//! every query, referral, validation step, and EDE decision stamped
//! with the simulated clock. `--trace-json` prints the same events as
//! JSON lines for machine consumption (see `docs/OBSERVABILITY.md`).
//!
//! `--log FILE` switches to query mode: load a query-log JSONL trace
//! (a `repro-scan --log-spill=...` file) and summarize the records the
//! `--query` filter expression matches — the historical-trace side of
//! the `ede_scan::query` API.

use extended_dns_errors::prelude::*;
use extended_dns_errors::scan::query::{load_jsonl, parse_vendor};
use extended_dns_errors::trace::ResolutionTrace;
use std::path::Path;
use std::sync::Arc;

/// The `--log FILE [--query EXPR]` mode: filter a historical query-log
/// trace and print the summary plus the first matching records.
fn query_log_mode(path: &str, expr: Option<&str>) {
    let filter = match expr
        .map(QueryFilter::parse)
        .unwrap_or(Ok(QueryFilter::new()))
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bad --query: {e}");
            std::process::exit(2);
        }
    };
    let records = match load_jsonl(Path::new(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(1);
        }
    };
    println!("loaded {} records from {path}", records.len());
    print!("{}", filter.summarize(&records).render());
    let matches = filter.filter(&records);
    for r in matches.iter().take(10) {
        println!(
            "  pass {} @{}ms {} [{}] rcode {:?} codes {:?}",
            r.pass,
            r.vtime_ms,
            r.name,
            r.category.name(),
            r.rcode,
            r.codes,
        );
    }
    if matches.len() > 10 {
        println!("  ... and {} more", matches.len() - 10);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_timeline = args.iter().any(|a| a == "--trace");
    let trace_json = args.iter().any(|a| a == "--trace-json");
    args.retain(|a| a != "--trace" && a != "--trace-json");

    if let Some(i) = args.iter().position(|a| a == "--log") {
        let Some(path) = args.get(i + 1).cloned() else {
            eprintln!("--log needs a file path");
            std::process::exit(2);
        };
        let expr = args
            .iter()
            .position(|a| a == "--query")
            .and_then(|j| args.get(j + 1).cloned());
        query_log_mode(&path, expr.as_deref());
        return;
    }

    let tb = Testbed::build();

    if args.first().map(String::as_str) == Some("--list") || args.is_empty() {
        println!("Available testbed subdomains (see the paper's Table 2):\n");
        for spec in &tb.specs {
            println!("  [group {}] {}", spec.group, spec.label);
        }
        println!("\nUsage: troubleshoot <subdomain> [vendor] [--trace | --trace-json]");
        return;
    }

    let label = &args[0];
    let vendor = args
        .get(1)
        .and_then(|s| parse_vendor(s))
        .unwrap_or(Vendor::Cloudflare);

    let Some(spec) = tb.spec(label) else {
        eprintln!("unknown subdomain {label:?}; try --list");
        std::process::exit(1);
    };

    // Attach a bounded event ring before resolving, so the whole
    // resolution (transport, iteration, validation, EDE synthesis,
    // authority answers) lands in one trace.
    let trace = Arc::new(ResolutionTrace::new(4096));
    if trace_timeline || trace_json {
        tb.attach_trace_sink(Arc::clone(&trace) as _);
    }

    let qname = tb.query_name(spec);
    let resolver = tb.resolver(vendor);
    let res = resolver.resolve(&qname, RrType::A);

    if trace_json {
        print!("{}", trace.to_jsonl());
        return;
    }

    println!("; <<>> extended-dns-errors troubleshoot <<>> {qname} A");
    println!("; vendor profile: {}\n", vendor.name());

    // The wire response, rendered the way dig would show it.
    let query = Message::query(0x1d1d, qname, RrType::A);
    let reply = res.to_message(&query);
    print!("{}", extended_dns_errors::wire::text::render_dig(&reply));

    // The resolver's own structured diagnosis, explained for operators.
    println!("\n;; DIAGNOSIS:");
    print!(
        "{}",
        extended_dns_errors::resolver::explain::explain(&res.diagnosis)
    );

    if trace_timeline {
        println!("\n;; TRACE ({} events):", trace.len());
        print!("{}", trace.render_timeline());

        // Per-tier cache counters for this resolution (the resolver was
        // freshly built, so the counters cover exactly this walk). The
        // per-worker L1 tier only exists inside scan workers, so a
        // single troubleshoot resolution reports the two shared tiers.
        let l2 = resolver.cache_stats();
        let infra = resolver.infra_stats();
        println!("\n;; CACHE TIERS:");
        println!(
            ";;   L2 shared : {} hits / {} probes ({:.1}%), {} stale, {} puts, {} live",
            l2.hits,
            l2.hits + l2.misses,
            100.0 * l2.hit_ratio(),
            l2.stale_served,
            l2.puts,
            l2.occupancy,
        );
        println!(
            ";;   infra     : {} key replays, {} referral replays / {} probes ({:.1}%)",
            infra.key_hits,
            infra.referral_hits,
            infra.referral_hits + infra.referral_misses,
            100.0 * infra.referral_hit_ratio(),
        );
    }
}
