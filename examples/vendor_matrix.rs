//! Regenerate the paper's Table 4 — the 63 × 7 matrix of EDE codes —
//! plus the agreement statistics, using the library's report module.
//!
//! Run with: `cargo run --release --example vendor_matrix`

fn main() {
    print!("{}", extended_dns_errors::scan::report::table4());
}
