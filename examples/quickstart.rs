//! Quickstart: build the paper's testbed, break nothing yourself, and
//! watch seven resolver implementations disagree about one broken zone.
//!
//! Run with: `cargo run --example quickstart`

use extended_dns_errors::prelude::*;

fn main() {
    // The testbed is the paper's extended-dns-errors.com infrastructure:
    // a signed root, a signed com, a signed parent zone, and 63
    // deliberately (mis)configured subdomains, each on its own
    // simulated authoritative server.
    let tb = Testbed::build();

    // Pick one classic misconfiguration: every RRSIG in the zone has
    // expired.
    let spec = tb.spec("rrsig-exp-all").expect("part of the testbed");
    let qname = tb.query_name(spec);
    println!("Resolving {qname} through all seven vendor profiles:\n");

    for vendor in Vendor::ALL {
        let resolver = tb.resolver(vendor);
        let res = resolver.resolve(&qname, RrType::A);
        let codes = if res.ede.is_empty() {
            "(no EDE)".to_string()
        } else {
            res.ede
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        };
        println!(
            "  {:<16} {:<10} {}",
            vendor.name(),
            res.rcode.to_string(),
            codes
        );
    }

    println!();
    println!("All seven agree the zone is broken (SERVFAIL), but they describe");
    println!("it differently — that differing specificity across 94% of the");
    println!("testbed is the paper's headline finding.");
}
