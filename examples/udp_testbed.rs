//! Serve the simulated testbed over real UDP and TCP sockets, so you
//! can point actual DNS tooling at the reproduction:
//!
//! ```text
//! cargo run --example udp_testbed -- 127.0.0.1:5533 cloudflare &
//! dig @127.0.0.1 -p 5533 rrsig-exp-all.extended-dns-errors.com A
//! dig @127.0.0.1 -p 5533 +tcp rrsig-exp-all.extended-dns-errors.com A
//! ```
//!
//! The response carries the vendor profile's Extended DNS Error options
//! (`dig` ≥ 9.16 prints them as `EDE: ...`). For the full-featured
//! server (worker control, stats, smoke mode) use
//! `cargo run -p ede-server --bin repro-serve`.

use extended_dns_errors::prelude::*;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bind = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:5533".to_string());
    let vendor = match args.get(1).map(String::as_str) {
        Some("bind") | Some("bind9") => Vendor::Bind9,
        Some("unbound") => Vendor::Unbound,
        Some("powerdns") => Vendor::PowerDns,
        Some("knot") => Vendor::Knot,
        Some("quad9") => Vendor::Quad9,
        Some("opendns") => Vendor::OpenDns,
        _ => Vendor::Cloudflare,
    };

    eprintln!("building testbed...");
    let tb = Testbed::build();
    let handle = Server::spawn(
        tb.resolver(vendor),
        ServerConfig::builder().bind(&bind).workers(2).build(),
    )
    .expect("bind sockets");
    let addr = handle.udp_addr();
    eprintln!(
        "serving the {} profile on udp+tcp {addr} — try:\n  dig @{} -p {} rrsig-exp-all.extended-dns-errors.com A",
        vendor.name(),
        addr.ip(),
        addr.port(),
    );
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}
