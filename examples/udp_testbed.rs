//! Serve the simulated testbed over a real UDP socket, so you can point
//! actual DNS tooling at the reproduction:
//!
//! ```text
//! cargo run --example udp_testbed -- 127.0.0.1:5533 cloudflare &
//! dig @127.0.0.1 -p 5533 rrsig-exp-all.extended-dns-errors.com A
//! ```
//!
//! The response carries the vendor profile's Extended DNS Error options
//! (`dig` ≥ 9.16 prints them as `EDE: ...`).

use extended_dns_errors::prelude::*;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bind = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:5533".to_string());
    let vendor = match args.get(1).map(String::as_str) {
        Some("bind") | Some("bind9") => Vendor::Bind9,
        Some("unbound") => Vendor::Unbound,
        Some("powerdns") => Vendor::PowerDns,
        Some("knot") => Vendor::Knot,
        Some("quad9") => Vendor::Quad9,
        Some("opendns") => Vendor::OpenDns,
        _ => Vendor::Cloudflare,
    };

    eprintln!("building testbed...");
    let tb = Testbed::build();
    let resolver = Arc::new(tb.resolver(vendor));
    let server = UdpFrontend::bind(&bind, resolver).expect("bind UDP socket");
    eprintln!(
        "serving the {} profile on {} — try:\n  dig @{} -p {} rrsig-exp-all.extended-dns-errors.com A",
        vendor.name(),
        server.local_addr().expect("addr"),
        bind.split(':').next().unwrap_or("127.0.0.1"),
        bind.split(':').nth(1).unwrap_or("5533"),
    );
    server.serve().expect("serve loop");
}
