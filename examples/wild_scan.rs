//! Run a scaled version of the paper's Internet-wide scan (Section 4)
//! and print the §4.2 inventory, the Figure 1 CDFs, and the Figure 2
//! Tranco distribution.
//!
//! Run with: `cargo run --release --example wild_scan -- [scale]`
//! (default scale 1:10000 ≈ 30k domains for a fast demo; the paper-shape
//! default for the repro binaries is 1:1000).

use extended_dns_errors::prelude::*;
use extended_dns_errors::scan::report;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    let cfg = PopulationConfig {
        scale,
        ..Default::default()
    };
    eprintln!("generating population at scale 1:{scale}...");
    let pop = Population::generate(cfg);
    eprintln!(
        "{} domains; building the simulated internet...",
        pop.domains.len()
    );
    let world = ScanWorld::build(&pop);
    eprintln!("scanning with the Cloudflare profile...");
    let config = ScanConfig::builder().progress(true).build();
    let result = scan(&pop, &world, &config);

    println!("{}", report::scan_summary(&result.stats));
    println!("{}", report::figure1(&result.stats));
    println!("{}", report::figure2(&result.stats));
    println!("{}", result.metrics.render());
}
