//! Emit the testbed's zones as RFC 1035 master files — the "instructions
//! on how to set up all the misconfigured domains" part of the paper's
//! artifact release, regenerated from code.
//!
//! ```text
//! cargo run --example dump_zones -- rrsig-exp-all   # one zone
//! cargo run --example dump_zones -- --all           # all 63
//! ```

use extended_dns_errors::prelude::*;
use extended_dns_errors::testbed::build::materialize_child_zone;
use extended_dns_errors::testbed::domains::all_specs;
use extended_dns_errors::zone::textual::{rdata_text, zone_to_master_file};

fn dump(label: &str, base: &Name, specs: &[extended_dns_errors::testbed::DomainSpec]) -> bool {
    let Some((idx, spec)) = specs.iter().enumerate().find(|(_, s)| s.label == label) else {
        return false;
    };
    let (zone, ds) = materialize_child_zone(spec, base, idx);
    println!(
        "; ===== {}.{base}  (group {}) =====",
        spec.label, spec.group
    );
    if let Some(m) = &spec.misconfig {
        println!("; misconfiguration: {m:?}");
    }
    if !spec.signed {
        println!("; zone is deliberately unsigned");
    }
    println!(
        "; parent publishes: {}",
        if ds.is_empty() {
            "no DS record".to_string()
        } else {
            ds.iter()
                .map(|d| format!("DS {}", rdata_text(d)))
                .collect::<Vec<_>>()
                .join("; ")
        }
    );
    print!("{}", zone_to_master_file(&zone));
    println!();
    true
}

fn main() {
    let base = Name::parse("extended-dns-errors.com").expect("valid");
    let specs = all_specs();
    let args: Vec<String> = std::env::args().skip(1).collect();

    match args.first().map(String::as_str) {
        Some("--all") => {
            for spec in &specs {
                dump(spec.label, &base, &specs);
            }
        }
        Some(label) => {
            if !dump(label, &base, &specs) {
                eprintln!(
                    "unknown subdomain {label:?}; see `cargo run --example troubleshoot -- --list`"
                );
                std::process::exit(1);
            }
        }
        None => {
            eprintln!("usage: dump_zones <subdomain>|--all");
            std::process::exit(2);
        }
    }
}
